"""Command-line entry point: ``qfix-experiments <command> [options]``.

Three kinds of commands exist: the figure reproductions of the paper, the
``batch`` service command that feeds a JSONL file of serialized
:class:`~repro.service.DiagnosisRequest` payloads through the
:class:`~repro.service.DiagnosisEngine` thread pool, and the ``serve``
command that boots the :mod:`repro.server` HTTP front end.

Examples::

    qfix-experiments example2
    qfix-experiments figure4 --scale small
    qfix-experiments all --scale small --seed 3
    qfix-experiments batch --input requests.jsonl --output responses.jsonl --max-workers 8
    qfix-experiments batch --input requests.jsonl --executor process --max-inflight 16
    qfix-experiments serve --host 0.0.0.0 --port 8080 --workers 8 --max-inflight 32
    qfix-experiments serve --data-dir ./qfix-data --shards 4 --fsync batch
    qfix-experiments serve --trace-sample-rate 0.1 --slow-trace-ms 250 --log-json
    qfix-experiments harness --grid smoke --seed 1 --budget 60s --output report.json
    qfix-experiments harness --grid smoke --executor process --max-workers 2
    qfix-experiments harness --grid smoke --trace-dump traces.json
    qfix-experiments trace --seed 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, TextIO

from repro.parallel import available_executors
from repro.service.engine import DiagnosisEngine, serve_jsonl_lines
from repro.experiments import (
    example2,
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from repro.experiments.common import ExperimentResult, format_table

#: Registry of runnable experiments.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "figure4": figure4.run,
    "figure6": figure6.run,
    "figure6-multi": figure6.run_multi,
    "figure6-single": figure6.run_single,
    "figure6-qtype": figure6.run_query_type,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "example2": example2.run,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="qfix-experiments",
        description=(
            "Reproduce the tables and figures of the QFix paper, or serve a "
            "batch of diagnosis requests."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "batch", "serve", "harness", "trace"],
        help=(
            "which figure to reproduce ('all' runs every experiment; 'batch' "
            "runs a JSONL file of diagnosis requests through the engine; "
            "'serve' boots the HTTP diagnosis service; 'harness' sweeps a "
            "scenario matrix through the differential correctness oracle; "
            "'trace' runs one fully traced diagnosis and prints its span tree)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="parameter preset: 'small' for quick runs, 'paper' for the paper's sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload random seed")
    parser.add_argument(
        "--input",
        default=None,
        help="batch mode: JSONL file of DiagnosisRequest payloads ('-' for stdin)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="batch mode: where to write JSONL responses (default: stdout)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help=(
            "batch/harness mode: fan-out width for concurrent diagnosis "
            "(threads for --executor thread, worker processes for "
            "--executor process)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=available_executors(),
        default="thread",
        help=(
            "batch/harness/serve mode: execution strategy — 'serial' runs "
            "inline, 'thread' uses a thread pool (fine for the native HiGHS "
            "backend), 'process' fans out over shard-affine worker processes "
            "(use for the CPU-bound branch-and-bound backend, where threads "
            "serialize on the GIL); serve mode applies it to the engine "
            "behind /v1/batch"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help=(
            "batch/harness mode: bound on in-flight requests (backpressure "
            "window; default: twice --max-workers); serve mode: admission "
            "limit — excess requests get 429 + Retry-After (default: "
            "unlimited)"
        ),
    )
    parser.add_argument(
        "--decompose",
        action="store_true",
        help=(
            "batch/serve mode: enable the decompose-and-conquer pipeline by "
            "default (log compaction + connected-component splitting with "
            "intra-request parallelism) for requests that carry no explicit "
            "config; harness mode: force decomposition on every cell of the "
            "grid (the differential cells of the long-log family carry their "
            "own decompose axis and do not need this flag)"
        ),
    )
    harness_group = parser.add_argument_group("harness mode")
    harness_group.add_argument(
        "--grid",
        default="smoke",
        help="harness mode: named cell grid to sweep (micro, smoke, full, longlog)",
    )
    harness_group.add_argument(
        "--budget",
        default=None,
        help=(
            "harness mode: wall-clock budget, e.g. '60s', '2m', or plain "
            "seconds; cells beyond the budget are reported as skipped"
        ),
    )
    serve_group = parser.add_argument_group("serve mode")
    serve_group.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve mode: interface to bind (0.0.0.0 for all)",
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8080,
        help="serve mode: TCP port to bind (0 picks an ephemeral port)",
    )
    serve_group.add_argument(
        "--workers",
        type=int,
        default=4,
        help="serve mode: engine thread-pool width for /v1/batch fan-out",
    )
    serve_group.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="serve mode: reject request bodies larger than this (413)",
    )
    serve_group.add_argument(
        "--port-file",
        default=None,
        help=(
            "serve mode: write the actually bound port to this file once "
            "listening (useful with --port 0 in scripts and CI)"
        ),
    )
    serve_group.add_argument(
        "--data-dir",
        default=None,
        help=(
            "serve mode: persist sessions under this directory (WAL + "
            "snapshots) and recover them on startup; omitted = in-memory only"
        ),
    )
    serve_group.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "serve mode: consistent-hash shard directories under --data-dir "
            "(fixed for the lifetime of a data directory)"
        ),
    )
    serve_group.add_argument(
        "--fsync",
        choices=("always", "batch", "never"),
        default="always",
        help=(
            "serve mode: WAL fsync policy — 'always' fsyncs every record "
            "(machine-crash safe), 'batch' every N records, 'never' leaves "
            "it to the OS (process-crash safe only)"
        ),
    )
    serve_group.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help=(
            "serve mode: WAL records per shard between automatic snapshot "
            "compactions (0 disables automatic snapshots)"
        ),
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help=(
            "serve mode: fraction of requests to trace end-to-end, 0..1 "
            "(0 disables the flight recorder; an incoming X-Trace-Id header "
            "always forces a trace regardless of the rate)"
        ),
    )
    obs_group.add_argument(
        "--slow-trace-ms",
        type=float,
        default=500.0,
        help=(
            "traced requests slower than this (milliseconds) are pinned in "
            "the slow-trace annex, surviving ring-buffer eviction"
        ),
    )
    obs_group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="serve mode: threshold for the structured 'qfix' logger hierarchy",
    )
    obs_group.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "serve mode: emit one JSON object per log record (machine-"
            "ingestible, with trace_id correlation) instead of text"
        ),
    )
    obs_group.add_argument(
        "--trace-dump",
        default=None,
        help=(
            "harness mode: trace every cell (forces sampling on) and write "
            "the flight recorder's full contents to this JSON file after the "
            "sweep"
        ),
    )
    return parser


def run_experiment(name: str, scale: str, seed: int) -> ExperimentResult:
    """Run one named experiment and print its table."""
    runner = EXPERIMENTS[name]
    result = runner(scale=scale, seed=seed)
    print(f"== {result.name}: {result.description}")
    print(format_table(result.rows))
    print()
    return result


def _default_engine_config(decompose: bool):
    """Engine default config for ``--decompose`` (None keeps the engine's own).

    Requests that carry an explicit config are untouched — the flag only
    changes the default applied to config-less requests, mirroring how the
    engine treats every other config field.
    """
    if not decompose:
        return None
    from repro.core.config import QFixConfig

    return QFixConfig.fully_optimized(decompose=True)


def run_batch(
    input_path: str | None,
    output_path: str | None,
    max_workers: int,
    executor: str = "thread",
    max_inflight: int | None = None,
    decompose: bool = False,
    *,
    stdin: TextIO | None = None,
) -> int:
    """Serve a JSONL file of diagnosis requests and emit JSONL responses.

    Each input line is one serialized request; each output line is the
    matching response, in input order.  A malformed line becomes an
    ``ok=False`` response rather than aborting the batch, mirroring the
    engine's per-request error isolation.  ``--executor`` picks the execution
    strategy (``process`` for CPU-bound multi-core fan-out) and
    ``--max-inflight`` bounds the backpressure window.  Exit status: 2 for
    usage errors, 1 when any request failed (so scripted callers can detect
    trouble), 0 when every request was served successfully.
    """
    if input_path is None:
        print("batch mode requires --input (path to a JSONL file, or '-')", file=sys.stderr)
        return 2
    if max_workers < 1:
        print("--max-workers must be at least 1", file=sys.stderr)
        return 2
    if max_inflight is not None and max_inflight < 1:
        print("--max-inflight must be at least 1", file=sys.stderr)
        return 2

    if input_path == "-":
        lines = (stdin if stdin is not None else sys.stdin).read().splitlines()
    else:
        try:
            with open(input_path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as error:
            print(f"cannot read --input file: {error}", file=sys.stderr)
            return 2

    engine = DiagnosisEngine(
        config=_default_engine_config(decompose),
        max_workers=max_workers,
        executor=executor,
        max_inflight=max_inflight,
    )
    try:
        responses = serve_jsonl_lines(engine, lines)
    finally:
        engine.close()

    payload = "\n".join(json.dumps(response.to_dict()) for response in responses)
    if output_path is None or output_path == "-":
        if payload:
            print(payload)
    else:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(payload + ("\n" if payload else ""))

    failures = sum(1 for response in responses if not response.ok)
    print(
        f"batch: served {len(responses)} request(s), {failures} failed",
        file=sys.stderr,
    )
    return 1 if failures else 0


def parse_budget(text: str | None) -> float | None:
    """Parse a wall-clock budget: ``'60s'``, ``'2m'``, or plain seconds."""
    if text is None:
        return None
    raw = text.strip().lower()
    multiplier = 1.0
    if raw.endswith("ms"):
        raw, multiplier = raw[:-2], 0.001
    elif raw.endswith("s"):
        raw = raw[:-1]
    elif raw.endswith("m"):
        raw, multiplier = raw[:-1], 60.0
    try:
        value = float(raw) * multiplier
    except ValueError:
        raise ValueError(f"cannot parse budget {text!r} (try '60s', '2m', or '90')") from None
    if value <= 0:
        raise ValueError("budget must be positive")
    return value


def run_harness(
    grid_name: str,
    seed: int,
    budget: str | None,
    output_path: str | None,
    max_workers: int,
    executor: str = "thread",
    max_inflight: int | None = None,
    trace_dump: str | None = None,
    slow_trace_ms: float = 500.0,
    decompose: bool = False,
) -> int:
    """Sweep a named scenario grid and report oracle violations.

    Prints a per-cell table and the seed-determinism fingerprint digest, and
    writes the full JSON report to ``--output`` when given.  The sweep runs
    through the same executor tier as production batches (``--executor
    process`` certifies the multi-core serving path).  Exit status: 2 for
    usage errors, 1 when any oracle violation was found, 0 otherwise — so CI
    can gate on the sweep directly.  ``--trace-dump`` forces tracing on for
    the whole sweep and archives the flight recorder as JSON — CI uploads it
    so a slow or violating cell arrives with its solver phase breakdown.
    """
    # Imported lazily: the figure commands don't pay for the harness stack.
    from repro.harness import get_grid, run_grid

    try:
        budget_seconds = parse_budget(budget)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if max_workers < 1:
        print("--max-workers must be at least 1", file=sys.stderr)
        return 2
    if max_inflight is not None and max_inflight < 1:
        print("--max-inflight must be at least 1", file=sys.stderr)
        return 2
    try:
        cells = get_grid(grid_name, seed)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(str(error), file=sys.stderr)
        return 2
    if decompose:
        # Force the decompose-and-conquer pipeline on every cell; cell ids
        # pick up the "decomposed" marker so the report shows what ran.
        from dataclasses import replace as _replace

        cells = [_replace(cell, decompose=True) for cell in cells]

    tracer = None
    if trace_dump is not None:
        from repro.obs import configure_tracing

        # Every cell traced: the dump is a CI artifact, not a sampling study.
        tracer = configure_tracing(
            1.0, slow_trace_ms=slow_trace_ms, capacity=4096, slow_capacity=256
        )

    engine = DiagnosisEngine(
        max_workers=max_workers, executor=executor, max_inflight=max_inflight
    )
    try:
        report = run_grid(
            cells,
            grid_name=grid_name,
            seed=seed,
            budget_seconds=budget_seconds,
            max_workers=max_workers,
            engine=engine,
        )
    finally:
        engine.close()

    rows = [
        {
            "cell": cell.cell_id,
            "ok": cell.ok,
            "feasible": cell.feasible,
            "status": cell.status,
            "distance": cell.distance,
            "f1": cell.accuracy.f1 if cell.accuracy is not None else "",
            "seconds": cell.elapsed_seconds,
        }
        for cell in report.cells
    ]
    print(f"== harness: grid '{grid_name}', seed {seed}")
    print(format_table(rows))
    summary = report.summary()
    print()
    print(
        "cells={cells} executed={executed} skipped={skipped} feasible={feasible} "
        "violations={violations}".format(**summary)
    )
    phases = summary.get("phase_seconds") or {}
    if phases:
        print(
            "phase seconds: "
            + " ".join(f"{name}={seconds:.3f}" for name, seconds in phases.items())
        )
    print(f"scenario fingerprints: {report.fingerprint_digest()}")
    for violation in report.violations:
        print(
            f"ORACLE VIOLATION [{violation.invariant}] {violation.cell_id}: "
            f"{violation.message}",
            file=sys.stderr,
        )

    if output_path is not None:
        payload = report.to_json()
        if output_path == "-":
            print(payload)
        else:
            with open(output_path, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"report written to {output_path}")

    if tracer is not None and tracer.store is not None and trace_dump is not None:
        dump = tracer.store.dump()
        with open(trace_dump, "w", encoding="utf-8") as handle:
            json.dump(dump, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"trace dump written to {trace_dump} "
            f"({dump['traces_recorded']} trace(s), "
            f"{dump['slow_traces_recorded']} slow)"
        )
    return 1 if report.violations else 0


def run_serve(
    host: str,
    port: int,
    workers: int,
    max_request_bytes: int | None,
    port_file: str | None,
    executor: str = "thread",
    max_inflight: int | None = None,
    data_dir: str | None = None,
    shards: int = 1,
    fsync: str = "always",
    snapshot_every: int = 256,
    trace_sample_rate: float = 0.0,
    slow_trace_ms: float = 500.0,
    log_level: str = "info",
    log_json: bool = False,
    decompose: bool = False,
) -> int:
    """Boot the HTTP diagnosis service and block until stopped.

    The bound address is printed once listening (with ``--port 0`` this is
    the only way to learn the ephemeral port); ``--port-file`` additionally
    persists the port for scripted callers.  With ``--data-dir`` the session
    tier journals to disk, recovers on startup, and SIGTERM/SIGINT shut down
    gracefully (WAL flushed, final snapshot published).

    ``--trace-sample-rate`` turns on the flight recorder: the process-wide
    tracer is configured *before* the app is built, so
    :class:`~repro.server.app.DiagnosisApp` (which defaults to the global
    tracer) picks it up, and ``GET /v1/debug/traces`` serves the recordings.
    """
    # Imported lazily so the figure commands don't pay for the server stack
    # (the repro package re-exports repro.server lazily for the same reason).
    from repro.obs import configure_logging, configure_tracing
    from repro.server.app import DEFAULT_MAX_REQUEST_BYTES, serve

    if workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if not 0.0 <= trace_sample_rate <= 1.0:
        print("--trace-sample-rate must be between 0 and 1", file=sys.stderr)
        return 2
    if slow_trace_ms <= 0:
        print("--slow-trace-ms must be positive", file=sys.stderr)
        return 2
    try:
        configure_logging(log_level, json_mode=log_json)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if trace_sample_rate > 0:
        configure_tracing(trace_sample_rate, slow_trace_ms=slow_trace_ms)
    limit = max_request_bytes if max_request_bytes is not None else DEFAULT_MAX_REQUEST_BYTES
    if limit < 1:
        print("--max-request-bytes must be at least 1", file=sys.stderr)
        return 2
    if max_inflight is not None and max_inflight < 1:
        print("--max-inflight must be at least 1", file=sys.stderr)
        return 2
    durability = None
    if data_dir is not None:
        from repro.durability import DurabilityConfig
        from repro.exceptions import ReproError

        try:
            durability = DurabilityConfig(
                data_dir=data_dir,
                shards=shards,
                fsync=fsync,
                snapshot_every=snapshot_every,
            )
        except ReproError as error:
            print(str(error), file=sys.stderr)
            return 2

    def on_ready(server) -> None:
        bound_host, bound_port = server.server_address[0], server.port
        print(f"serving on http://{bound_host}:{bound_port}", flush=True)
        if port_file is not None:
            # Written atomically: pollers watch for the file to appear, so it
            # must never be observable empty.
            staging = f"{port_file}.tmp"
            with open(staging, "w", encoding="utf-8") as handle:
                handle.write(f"{bound_port}\n")
            os.replace(staging, port_file)

    serve(
        host,
        port,
        engine=DiagnosisEngine(
            config=_default_engine_config(decompose),
            max_workers=workers,
            executor=executor,
        ),
        max_request_bytes=limit,
        max_inflight=max_inflight,
        durability=durability,
        ready_callback=on_ready,
    )
    return 0


def _format_span_tree(tree: dict) -> list[str]:
    """Render a recorded trace (a span-tree dict) as indented ASCII lines."""
    lines = [
        "trace {id}  root={root}  {ms:.1f}ms  {count} span(s){slow}".format(
            id=tree.get("trace_id", ""),
            root=tree.get("root_name", ""),
            ms=float(tree.get("duration_ms", 0.0)),
            count=tree.get("span_count", 0),
            slow="  SLOW" if tree.get("slow") else "",
        )
    ]

    def _walk(node: dict, prefix: str, connector: str) -> None:
        attributes = node.get("attributes", {})
        detail = " ".join(f"{key}={value}" for key, value in attributes.items())
        status = node.get("status", "ok")
        lines.append(
            "{prefix}{connector}{name}  {ms:.1f}ms{status}{detail}".format(
                prefix=prefix,
                connector=connector,
                name=node.get("name", ""),
                ms=float(node.get("duration_ms", 0.0)),
                status="" if status == "ok" else f"  [{status}]",
                detail=f"  ({detail})" if detail else "",
            )
        )
        children = node.get("children", [])
        child_prefix = prefix + ("   " if connector.startswith("└") else "│  ")
        if not connector:
            child_prefix = prefix
        for index, child in enumerate(children):
            last = index == len(children) - 1
            _walk(child, child_prefix, "└─ " if last else "├─ ")

    root = tree.get("root")
    if root is not None:
        _walk(root, "", "")
    return lines


def run_trace(
    input_path: str | None,
    seed: int,
    output_path: str | None = None,
    slow_trace_ms: float = 500.0,
) -> int:
    """Run one diagnosis with tracing forced on and print its span tree.

    Without ``--input`` a small built-in synthetic scenario is diagnosed (one
    corrupted query, full complaint set — enough to light up every phase
    span).  With ``--input`` the first JSONL line of the file is served
    instead, so a request captured from production can be re-run under the
    profiler.  ``--output`` additionally writes the full span tree as JSON.
    Exit status: 2 for usage errors, 1 when the diagnosis failed, 0 otherwise.
    """
    # Imported lazily, like the other service commands.
    from repro.obs import configure_tracing, reset_tracing
    from repro.service.types import DiagnosisRequest

    if input_path is not None:
        try:
            with open(input_path, "r", encoding="utf-8") as handle:
                first = next((line for line in handle if line.strip()), None)
        except OSError as error:
            print(f"cannot read --input file: {error}", file=sys.stderr)
            return 2
        if first is None:
            print("--input file holds no request lines", file=sys.stderr)
            return 2
        try:
            request = DiagnosisRequest.from_dict(json.loads(first))
        except Exception as error:  # noqa: BLE001 - CLI boundary
            print(f"cannot decode request: {error}", file=sys.stderr)
            return 2
    else:
        from repro.workload.spec import ScenarioSpec, build_spec_scenario

        scenario = build_spec_scenario(ScenarioSpec(seed=seed))
        request = DiagnosisRequest(
            initial=scenario.initial,
            log=scenario.corrupted_log,
            complaints=scenario.complaints,
            final=scenario.dirty,
            request_id=f"trace-demo-s{seed}",
        )

    tracer = configure_tracing(1.0, slow_trace_ms=slow_trace_ms)
    engine = DiagnosisEngine(max_workers=1)
    try:
        response = engine.submit(request)
    finally:
        engine.close()

    store = tracer.store
    recorded = store.list(limit=1) if store is not None else []
    if not recorded:
        print("no trace was recorded", file=sys.stderr)
        reset_tracing()
        return 1
    tree = store.get(recorded[0]["trace_id"]) or {}
    reset_tracing()

    for line in _format_span_tree(tree):
        print(line)
    print()
    print(
        f"diagnosis: ok={response.ok} feasible={response.feasible} "
        f"status={response.status} elapsed={response.elapsed_seconds:.3f}s"
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(tree, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"span tree written to {output_path}")
    return 0 if response.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "serve":
        return run_serve(
            args.host,
            args.port,
            args.workers,
            args.max_request_bytes,
            args.port_file,
            args.executor,
            args.max_inflight,
            args.data_dir,
            args.shards,
            args.fsync,
            args.snapshot_every,
            args.trace_sample_rate,
            args.slow_trace_ms,
            args.log_level,
            args.log_json,
            args.decompose,
        )
    if args.experiment == "batch":
        return run_batch(
            args.input,
            args.output,
            args.max_workers,
            args.executor,
            args.max_inflight,
            args.decompose,
        )
    if args.experiment == "harness":
        return run_harness(
            args.grid,
            args.seed,
            args.budget,
            args.output,
            args.max_workers,
            args.executor,
            args.max_inflight,
            args.trace_dump,
            args.slow_trace_ms,
            args.decompose,
        )
    if args.experiment == "trace":
        return run_trace(args.input, args.seed, args.output, args.slow_trace_ms)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, args.scale, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
