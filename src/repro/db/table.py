"""Rows and tables with stable row identifiers.

A complaint in QFix is a mapping ``t -> t*`` between a tuple in the final
database state and its correct value.  To express "the same tuple" across
database states we attach a stable integer row identifier (``rid``) to every
row when it first enters the database; replaying the query log preserves rids,
so ``D0``, the intermediate states, and ``Dn`` can be joined on rid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping

from repro.db.schema import Schema
from repro.exceptions import SchemaError, UnknownAttributeError


@dataclass
class Row:
    """A single tuple: a stable identifier plus a mapping of attribute values.

    Rows are mutable value containers; tables copy them defensively whenever a
    snapshot is taken, so mutating a row obtained from one state never leaks
    into another state.
    """

    rid: int
    values: Dict[str, float]

    def __getitem__(self, attribute: str) -> float:
        try:
            return self.values[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute) from None

    def __setitem__(self, attribute: str, value: float) -> None:
        if attribute not in self.values:
            raise UnknownAttributeError(attribute)
        self.values[attribute] = float(value)

    def get(self, attribute: str, default: float | None = None) -> float | None:
        return self.values.get(attribute, default)

    def copy(self) -> "Row":
        """Return an independent copy of this row."""
        return Row(self.rid, dict(self.values))

    def as_tuple(self, attribute_order: Iterable[str]) -> tuple[float, ...]:
        """Return values ordered according to ``attribute_order``."""
        return tuple(self.values[name] for name in attribute_order)

    def same_values(self, other: "Row", *, tolerance: float = 1e-6) -> bool:
        """Return whether two rows agree on every attribute within tolerance."""
        if set(self.values) != set(other.values):
            return False
        return all(
            abs(self.values[name] - other.values[name]) <= tolerance
            for name in self.values
        )

    def differing_attributes(
        self, other: "Row", *, tolerance: float = 1e-6
    ) -> tuple[str, ...]:
        """Attributes on which this row and ``other`` disagree."""
        shared = set(self.values) & set(other.values)
        return tuple(
            sorted(
                name
                for name in shared
                if abs(self.values[name] - other.values[name]) > tolerance
            )
        )


class Table:
    """An ordered collection of rows conforming to a :class:`Schema`.

    The table assigns rids on insert and maintains rows in insertion order,
    which keeps replay deterministic (the synthetic generator and the
    benchmarks rely on that determinism for reproducibility).
    """

    def __init__(self, schema: Schema, rows: Iterable[Row] | None = None) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rid = 0
        for row in rows or ():
            self._adopt(row)

    # -- internal helpers -----------------------------------------------------

    def _adopt(self, row: Row) -> None:
        """Insert an existing row object, keeping its rid."""
        if row.rid in self._rows:
            raise SchemaError(f"duplicate rid {row.rid} in table '{self.schema.name}'")
        self.schema.validate_values(row.values)
        self._rows[row.rid] = row
        self._next_rid = max(self._next_rid, row.rid + 1)

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Mapping[str, float], rid: int | None = None) -> Row:
        """Insert a new row and return it.

        ``rid`` may be supplied to force a particular identifier (used when
        replaying a log so that the clean and corrupted replays assign the
        same rid to the row produced by the same INSERT statement).
        """
        self.schema.validate_values(values)
        if rid is None:
            rid = self._next_rid
        if rid in self._rows:
            raise SchemaError(f"duplicate rid {rid} in table '{self.schema.name}'")
        row = Row(rid, {name: float(value) for name, value in values.items()})
        self._rows[rid] = row
        self._next_rid = max(self._next_rid, rid + 1)
        return row

    def delete(self, rid: int) -> None:
        """Remove the row with identifier ``rid`` (no-op if absent)."""
        self._rows.pop(rid, None)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __contains__(self, rid: object) -> bool:
        return rid in self._rows

    @property
    def rids(self) -> tuple[int, ...]:
        """Row identifiers in insertion order."""
        return tuple(self._rows)

    @property
    def next_rid(self) -> int:
        """The rid that the next insert will receive."""
        return self._next_rid

    def reserve_rids(self, next_rid: int) -> None:
        """Ensure auto-assigned rids start at least at ``next_rid``.

        Used when reconstructing a state whose tail rows were deleted: the
        rid counter must not reuse the freed identifiers, or replayed INSERTs
        would receive different rids than they did on the original state.
        """
        self._next_rid = max(self._next_rid, int(next_rid))

    def get(self, rid: int) -> Row | None:
        """Return the row with identifier ``rid`` or ``None``."""
        return self._rows.get(rid)

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows.values())

    # -- copying --------------------------------------------------------------

    def copy(self) -> "Table":
        """Deep-copy the table (rows are copied, the schema is shared)."""
        clone = Table(self.schema)
        for row in self._rows.values():
            clone._adopt(row.copy())
        clone._next_rid = self._next_rid
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name!r}, rows={len(self)})"
