"""Synthetic workload generator (Section 7.1 of the paper).

The generator produces an initial database of ``n_tuples`` random rows over a
schema with a primary key ``id`` and ``n_attributes`` numeric attributes
``a1 ... aNa`` drawn uniformly from ``[0, domain_max]``, followed by a log of
``n_queries`` UPDATE / INSERT / DELETE statements whose clause shapes match the
paper's templates::

    SET clause:                      WHERE clause:
      Constant:  SET a_i = ?           Point:  WHERE id = ?
      Relative:  SET a_i = a_i + ?     Range:  WHERE a_j BETWEEN ? AND ? (+r)

The ``skew`` parameter selects attributes through a zipfian distribution, and
``selectivity`` controls the width of range predicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.db.database import Database
from repro.db.schema import Schema
from repro.exceptions import ReproError
from repro.queries.expressions import Attr, BinOp, Const, Param
from repro.queries.log import QueryLog
from repro.queries.predicates import And, Comparison, Predicate
from repro.queries.query import DeleteQuery, InsertQuery, Query, UpdateQuery


class WhereClauseType(enum.Enum):
    """Shape of the WHERE clause in generated UPDATE / DELETE queries."""

    POINT = "point"
    RANGE = "range"


class SetClauseType(enum.Enum):
    """Shape of the SET clause in generated UPDATE queries."""

    CONSTANT = "constant"
    RELATIVE = "relative"


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload (paper defaults in parentheses).

    ``n_tuples`` (ND=1000), ``n_attributes`` (Na=10), ``domain_max`` (Vd=200),
    ``n_queries`` (Nq=300), ``selectivity`` (2%), ``skew`` (s=0).
    """

    n_tuples: int = 1000
    n_attributes: int = 10
    domain_max: int = 200
    n_queries: int = 300
    query_type: str = "update"  # "update" | "insert" | "delete" | "mixed"
    where_type: WhereClauseType = WhereClauseType.RANGE
    set_type: SetClauseType = SetClauseType.CONSTANT
    selectivity: float = 0.02
    n_predicates: int = 1
    skew: float = 0.0
    seed: int = 0
    #: Fraction of UPDATE queries when ``query_type == "mixed"``.
    mixed_update_fraction: float = 0.6
    #: Fraction of INSERT queries when ``query_type == "mixed"``.
    mixed_insert_fraction: float = 0.3

    def with_overrides(self, **changes: object) -> "SyntheticConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass
class Workload:
    """A generated workload: schema, initial state, and the clean query log."""

    schema: Schema
    initial: Database
    log: QueryLog
    config: SyntheticConfig | None = None
    metadata: dict[str, object] = field(default_factory=dict)


class SyntheticWorkloadGenerator:
    """Deterministic (seeded) generator for synthetic workloads."""

    def __init__(self, config: SyntheticConfig | None = None) -> None:
        self.config = config if config is not None else SyntheticConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # -- public API ---------------------------------------------------------------

    def generate(self) -> Workload:
        """Generate the schema, the initial database, and the query log."""
        schema = self.build_schema()
        initial = self.build_initial_database(schema)
        log = self.build_log(schema, initial)
        return Workload(schema, initial, log, self.config)

    def build_schema(self) -> Schema:
        """Schema with a key attribute ``id`` plus ``a1 ... aNa``."""
        config = self.config
        names = ["id"] + [f"a{i}" for i in range(1, config.n_attributes + 1)]
        # The key domain must be wide enough for rows inserted by the log.
        key_upper = float(config.n_tuples + config.n_queries + 10)
        upper = float(config.domain_max)
        specs = []
        from repro.db.schema import AttributeSpec

        for name in names:
            if name == "id":
                specs.append(
                    AttributeSpec(name, lower=0.0, upper=max(key_upper, upper), key=True, integral=True)
                )
            else:
                specs.append(AttributeSpec(name, lower=0.0, upper=upper, integral=True))
        return Schema("synthetic", tuple(specs))

    def build_initial_database(self, schema: Schema) -> Database:
        """``n_tuples`` rows with sequential ids and uniform attribute values."""
        config = self.config
        rows = []
        for index in range(config.n_tuples):
            values = {"id": float(index)}
            for attr_index in range(1, config.n_attributes + 1):
                values[f"a{attr_index}"] = float(
                    self._rng.integers(0, config.domain_max + 1)
                )
            rows.append(values)
        return Database(schema, rows)

    def build_log(self, schema: Schema, initial: Database) -> QueryLog:
        """Generate ``n_queries`` queries of the configured type."""
        config = self.config
        queries: list[Query] = []
        next_insert_id = config.n_tuples
        for index in range(config.n_queries):
            label = f"q{index + 1}"
            kind = self._pick_query_kind()
            if kind == "insert":
                queries.append(self._make_insert(label, next_insert_id))
                next_insert_id += 1
            elif kind == "delete":
                queries.append(self._make_delete(label, config))
            else:
                queries.append(self._make_update(label, config))
        return QueryLog(queries)

    # -- query construction ------------------------------------------------------------

    def _pick_query_kind(self) -> str:
        config = self.config
        if config.query_type in ("update", "insert", "delete"):
            return config.query_type
        if config.query_type != "mixed":
            raise ReproError(f"unknown query_type '{config.query_type}'")
        roll = self._rng.random()
        if roll < config.mixed_update_fraction:
            return "update"
        if roll < config.mixed_update_fraction + config.mixed_insert_fraction:
            return "insert"
        return "delete"

    def _pick_attribute(self) -> str:
        """Choose a non-key attribute, uniformly or zipf-skewed towards ``a1``."""
        config = self.config
        count = config.n_attributes
        if config.skew <= 0.0:
            index = int(self._rng.integers(1, count + 1))
        else:
            weights = np.array([1.0 / (rank**config.skew) for rank in range(1, count + 1)])
            weights /= weights.sum()
            index = int(self._rng.choice(np.arange(1, count + 1), p=weights))
        return f"a{index}"

    def _random_value(self) -> int:
        return int(self._rng.integers(0, self.config.domain_max + 1))

    def _make_where(self, label: str, config: SyntheticConfig) -> Predicate:
        """Point predicate on the key, or a (possibly multi-attribute) range predicate."""
        if config.where_type is WhereClauseType.POINT:
            key_value = int(self._rng.integers(0, config.n_tuples))
            return Comparison(Attr("id"), "=", Param(f"{label}_key", float(key_value)))
        range_width = max(0, int(round(config.selectivity * config.domain_max)))
        conjuncts = []
        used: set[str] = set()
        for predicate_index in range(config.n_predicates):
            attribute = self._pick_attribute()
            while attribute in used and len(used) < config.n_attributes:
                attribute = self._pick_attribute()
            used.add(attribute)
            low = self._random_value()
            high = min(low + range_width, config.domain_max)
            conjuncts.append(
                Comparison(Attr(attribute), ">=", Param(f"{label}_lo{predicate_index}", float(low)))
            )
            conjuncts.append(
                Comparison(Attr(attribute), "<=", Param(f"{label}_hi{predicate_index}", float(high)))
            )
        if len(conjuncts) == 1:
            return conjuncts[0]
        return And(conjuncts)

    def _make_update(self, label: str, config: SyntheticConfig) -> UpdateQuery:
        attribute = self._pick_attribute()
        value = float(self._random_value())
        if config.set_type is SetClauseType.CONSTANT:
            set_expr = Param(f"{label}_set", value)
        else:
            delta = float(int(self._rng.integers(-config.domain_max // 4, config.domain_max // 4 + 1)))
            set_expr = BinOp("+", Attr(attribute), Param(f"{label}_set", delta))
        where = self._make_where(label, config)
        return UpdateQuery("synthetic", {attribute: set_expr}, where, label=label)

    def _make_delete(self, label: str, config: SyntheticConfig) -> DeleteQuery:
        # Delete queries use narrow range predicates so the table does not empty out.
        where = self._make_where(label, config)
        return DeleteQuery("synthetic", where, label=label)

    def _make_insert(self, label: str, next_id: int) -> InsertQuery:
        config = self.config
        values: list[tuple[str, Param | Const]] = [("id", Const(float(next_id)))]
        for attr_index in range(1, config.n_attributes + 1):
            values.append(
                (f"a{attr_index}", Param(f"{label}_v{attr_index}", float(self._random_value())))
            )
        return InsertQuery("synthetic", tuple(values), label=label)


    # -- corruption ---------------------------------------------------------------------

    def corrupt_query(
        self, query: Query, rng: "np.random.Generator | None" = None
    ) -> tuple[Query, dict[str, float]]:
        """Replace a query's constants as if the query were regenerated.

        The paper corrupts a query by substituting "a randomly generated query
        of the same type"; structurally that means every constant is re-drawn
        from the workload's own distribution: range predicates keep their
        ``[?, ?+r]`` shape, point predicates pick another existing key, SET
        constants are re-drawn from the value domain.  Parameter roles are
        recovered from the generator's naming convention
        (``_lo#``/``_hi#``/``_key``/``_set``/``_v#``).
        """
        config = self.config
        generator = rng if rng is not None else self._rng
        params = query.params()
        if not params:
            return query, {}
        range_width = max(0, int(round(config.selectivity * config.domain_max)))
        new_values: dict[str, float] = {}
        for name, value in params.items():
            if name.endswith("_key"):
                new_values[name] = float(generator.integers(0, config.n_tuples))
            elif "_lo" in name:
                new_values[name] = float(generator.integers(0, config.domain_max + 1))
            elif "_hi" in name:
                low_name = name.replace("_hi", "_lo")
                base = new_values.get(low_name, value)
                new_values[name] = float(min(base + range_width, config.domain_max))
            elif name.endswith("_set") and isinstance(query, UpdateQuery) and (
                self.config.set_type is SetClauseType.RELATIVE
            ):
                new_values[name] = float(
                    generator.integers(-config.domain_max // 4, config.domain_max // 4 + 1)
                )
            else:
                new_values[name] = float(generator.integers(0, config.domain_max + 1))
        # Make sure the corruption actually changes something.
        if all(abs(new_values[name] - params[name]) < 1e-9 for name in params):
            pivot = next(iter(params))
            new_values[pivot] = float(
                (params[pivot] + 1 + generator.integers(1, max(2, config.domain_max // 2)))
                % (config.domain_max + 1)
            )
        return query.with_params(new_values), new_values


def default_corruption_indices(n_queries: int, every: int = 10) -> Sequence[int]:
    """The paper's multi-corruption pattern: every ``every``-th query starting at q1."""
    return tuple(range(0, n_queries, every))
