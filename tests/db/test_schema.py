"""Tests for repro.db.schema."""

import pytest

from repro.db.schema import AttributeSpec, Schema
from repro.exceptions import SchemaError, UnknownAttributeError


class TestAttributeSpec:
    def test_basic_properties(self):
        spec = AttributeSpec("income", lower=0, upper=100)
        assert spec.width == 100
        assert spec.contains(50)
        assert not spec.contains(101)
        assert spec.clamp(150) == 100
        assert spec.clamp(-5) == 0

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")

    def test_rejects_inverted_bounds(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", lower=10, upper=5)


class TestSchema:
    def test_build_helper(self):
        schema = Schema.build("t", ["id", "a", "b"], upper=10, key="id")
        assert schema.attribute_names == ("id", "a", "b")
        assert schema.key_attribute == "id"
        assert schema.spec("a").upper == 10
        assert "a" in schema
        assert "zzz" not in schema
        assert len(schema) == 3

    def test_index_of_and_unknown_attribute(self):
        schema = Schema.build("t", ["x", "y"])
        assert schema.index_of("y") == 1
        with pytest.raises(UnknownAttributeError):
            schema.index_of("z")
        with pytest.raises(UnknownAttributeError):
            schema.spec("z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build("t", ["a", "a"])

    def test_multiple_keys_rejected(self):
        specs = (AttributeSpec("a", key=True), AttributeSpec("b", key=True))
        with pytest.raises(SchemaError):
            Schema("t", specs)

    def test_validate_values(self):
        schema = Schema.build("t", ["a", "b"])
        schema.validate_values({"a": 1, "b": 2})
        with pytest.raises(SchemaError):
            schema.validate_values({"a": 1})
        with pytest.raises(SchemaError):
            schema.validate_values({"a": 1, "b": 2, "c": 3})

    def test_domain_bounds(self):
        schema = Schema(
            "t", (AttributeSpec("a", 0, 10), AttributeSpec("b", -5, 3))
        )
        assert schema.domain_bounds() == (-5, 10)

    def test_with_attribute(self):
        schema = Schema.build("t", ["a"])
        extended = schema.with_attribute(AttributeSpec("b"))
        assert extended.attribute_names == ("a", "b")
        assert schema.attribute_names == ("a",)

    def test_empty_schema_domain(self):
        assert Schema("t").domain_bounds() == (0.0, 0.0)
