"""Trace propagation across the executor tiers, including worker crashes.

The tentpole guarantee under test: a batch traced at the root produces ONE
stitched span tree no matter which executor served it — thread pools join via
a live :class:`ContextHandle`, worker processes ship their spans back inside
the pickled response, and a crashed worker loses only its own spans.
"""

import multiprocessing

import pytest

from repro.obs import TraceStore, Tracer, reset_tracing
from repro.parallel.process import ProcessExecutor
from repro.service.engine import DiagnosisEngine
from repro.service.registry import register_diagnoser


@pytest.fixture(autouse=True)
def _isolated_tracer():
    reset_tracing()
    yield
    reset_tracing()


def make_tracer() -> Tracer:
    return Tracer(sample_rate=1.0, store=TraceStore(slow_threshold_ms=10_000))


def tree_names(node):
    yield node["name"]
    for child in node.get("children", []):
        yield from tree_names(child)


def traced_batch(engine, tracer, requests):
    with tracer.trace("http POST /v1/batch") as root:
        responses = engine.diagnose_batch(requests)
    return responses, tracer.store.get(root.trace_id)


class TestThreadTier:
    def test_thread_batch_stitches_one_tree(self, scenario_pool, make_request):
        tracer = make_tracer()
        engine = DiagnosisEngine(max_workers=2)
        try:
            requests = [
                make_request(scenario_pool[i], f"r{i}") for i in range(3)
            ]
            responses, tree = traced_batch(engine, tracer, requests)
        finally:
            engine.close()
        assert all(response.ok for response in responses)
        names = list(tree_names(tree["root"]))
        assert names.count("engine.submit") == 3
        assert names.count("engine.diagnose") == 3
        assert "engine.batch" in names
        assert "engine.stream" in names

    def test_serial_fast_path_traces_too(self, scenario_pool, make_request):
        tracer = make_tracer()
        engine = DiagnosisEngine(max_workers=1)
        try:
            responses, tree = traced_batch(
                engine, tracer, [make_request(scenario_pool[0], "solo")]
            )
        finally:
            engine.close()
        assert responses[0].ok
        assert "engine.diagnose" in list(tree_names(tree["root"]))


class TestProcessTier:
    def test_worker_spans_ship_back_and_stitch(self, scenario_pool, make_request):
        tracer = make_tracer()
        engine = DiagnosisEngine(
            max_workers=2, executor=ProcessExecutor(2, force=True)
        )
        try:
            requests = [
                make_request(scenario_pool[i], f"p{i}") for i in range(3)
            ]
            responses, tree = traced_batch(engine, tracer, requests)
        finally:
            engine.close()
        assert all(response.ok for response in responses)
        # Shipped copies are cleared once adopted: no double counting.
        assert all(response.trace_spans == [] for response in responses)
        names = list(tree_names(tree["root"]))
        assert names.count("engine.submit") == 3
        assert names.count("engine.diagnose") == 3

    def test_crash_and_retry_keep_the_survivors_spans(
        self, scenario_pool, make_request
    ):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("test-registered diagnosers only reach workers under fork")
        tracer = make_tracer()
        engine = DiagnosisEngine(
            max_workers=2, executor=ProcessExecutor(2, force=True)
        )
        try:
            requests = [
                make_request(scenario_pool[0], "ok-0"),
                make_request(
                    scenario_pool[0], "boom", diagnoser=_TracePropagationKamikaze.name
                ),
                make_request(scenario_pool[1], "ok-1"),
                make_request(scenario_pool[2], "ok-2"),
            ]
            responses, tree = traced_batch(engine, tracer, requests)
        finally:
            engine.close()
        by_id = {response.request_id: response for response in responses}
        assert not by_id["boom"].ok
        for request_id in ("ok-0", "ok-1", "ok-2"):
            assert by_id[request_id].ok, request_id
        # Every survivor's worker-side spans made it into the parent tree —
        # whether served before the crash, or retried on a quarantine pool.
        names = list(tree_names(tree["root"]))
        assert names.count("engine.diagnose") >= 3
        assert "engine.stream" in names


class _TracePropagationKamikaze:
    """Kills its worker process; only this request's spans may be lost."""

    name = "kamikaze-trace-propagation-test"

    def diagnose(self, *args, **kwargs):  # pragma: no cover - dies in workers
        import os

        os._exit(17)


register_diagnoser(_TracePropagationKamikaze.name, _TracePropagationKamikaze)
