"""Solver backends for the MILP modeling layer.

Choosing a backend
==================

``highs`` (:class:`HighsSolver`, the default)
    Drives ``scipy.optimize.milp`` — a compiled branch-and-cut engine with
    cutting planes and its own presolve.  Fastest to optimality on every
    workload we benchmark; the only reasons to switch away are debuggability
    (it is a black box per solve) and the lack of a warm-start hook (hints
    are accepted but ignored, so repeated session diagnoses pay full price).

``branch-and-bound`` (:class:`BranchAndBoundSolver`)
    Pure-Python best-first branch-and-bound over HiGHS LP relaxations.
    Slower per node, but fully inspectable (``Solution.stats`` reports node
    counts and presolve reductions) and warm-startable: a feasible assignment
    from a previous solve seeds the incumbent, which prunes most of the tree
    when the instance barely changed.  Prefer it for incremental/session
    workloads dominated by near-identical re-solves, and in tests that need
    to observe solver behaviour rather than just the answer.

Both backends consume the same sparse CSR export (``Model.to_matrices``) and
run the same matrix presolve (:mod:`repro.milp.presolve`) first, so reported
objectives are directly comparable; the property suite asserts they agree.
"""

from repro.milp.solvers.base import Solver, finalize_solution_values, solve_with_warm_start
from repro.milp.solvers.scipy_backend import HighsSolver
from repro.milp.solvers.branch_and_bound import BranchAndBoundSolver
from repro.milp.solvers.registry import available_solvers, get_solver, register_solver

__all__ = [
    "Solver",
    "HighsSolver",
    "BranchAndBoundSolver",
    "get_solver",
    "register_solver",
    "available_solvers",
    "finalize_solution_values",
    "solve_with_warm_start",
]
