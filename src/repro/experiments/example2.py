"""Example 2 / Figure 2 — the tax-bracket running example, end to end.

The paper reports that QFix repairs the corrupted tax-bracket query of Figure 2
in 35 milliseconds; this module rebuilds the exact scenario (the digit
transposition 87500 -> 85700 in ``q1``'s WHERE clause), runs the fully
optimized pipeline, and reports the repaired predicate and the latency.
"""

from __future__ import annotations

import time

from repro.core.complaints import ComplaintSet
from repro.core.metrics import evaluate_repair
from repro.core.qfix import QFix
from repro.db.database import Database
from repro.db.schema import Schema
from repro.experiments.common import ExperimentResult, format_table, incremental_config
from repro.queries.executor import replay
from repro.queries.log import QueryLog
from repro.sql.parser import parse_query

#: The initial Taxes table of Figure 2 (t1 .. t4).
INITIAL_ROWS = (
    {"income": 9_500.0, "owed": 950.0, "pay": 8_550.0},
    {"income": 90_000.0, "owed": 22_500.0, "pay": 67_500.0},
    {"income": 86_000.0, "owed": 21_500.0, "pay": 64_500.0},
    {"income": 86_500.0, "owed": 21_625.0, "pay": 64_875.0},
)

#: The corrupted log: q1's predicate transposes 87500 into 85700.
CORRUPTED_SQL = (
    "UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700",
    "INSERT INTO Taxes (income, owed, pay) VALUES (87000, 21750, 65250)",
    "UPDATE Taxes SET pay = income - owed",
)

#: The true predicate constant of q1.
TRUE_BRACKET = 87_500.0


def build_example() -> tuple[Schema, Database, QueryLog, QueryLog]:
    """Schema, initial state, corrupted log, and true log of Figure 2."""
    schema = Schema.build("Taxes", ["income", "owed", "pay"], upper=300_000.0)
    initial = Database(schema, INITIAL_ROWS)
    corrupted = QueryLog(
        [parse_query(sql, label=f"q{index + 1}") for index, sql in enumerate(CORRUPTED_SQL)]
    )
    true_log = corrupted.with_params({"q1_p1": TRUE_BRACKET})
    return schema, initial, corrupted, true_log


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Repair the Figure 2 example and report latency plus the repaired predicate."""
    del scale, seed  # the example has a single, fixed size
    schema, initial, corrupted_log, true_log = build_example()
    dirty = replay(initial, corrupted_log)
    truth = replay(initial, true_log)
    complaints = ComplaintSet.from_states(dirty, truth)

    qfix = QFix(incremental_config(1))
    start = time.perf_counter()
    repair = qfix.diagnose(initial, dirty, corrupted_log, complaints)
    elapsed = time.perf_counter() - start
    accuracy = evaluate_repair(initial, dirty, truth, repair.repaired_log)

    result = ExperimentResult(
        name="example2",
        description="Example 2 / Figure 2: tax bracket repair (paper: 35 ms)",
        metadata={"paper_milliseconds": 35.0},
    )
    result.add_row(
        milliseconds=elapsed * 1000.0,
        feasible=repair.feasible,
        changed_queries=list(repair.changed_query_indices),
        repaired_bracket=repair.parameter_values.get("q1_p1"),
        true_bracket=TRUE_BRACKET,
        complaints=len(complaints),
        precision=accuracy.precision,
        recall=accuracy.recall,
        f1=accuracy.f1,
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - exercised via the CLI
    result = run()
    print(result.description)
    print(format_table(result.rows))
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
