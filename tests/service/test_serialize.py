"""Round-trip tests for the service-boundary JSON codecs."""

import json

import pytest

from repro.core.complaints import Complaint, ComplaintSet
from repro.core.config import EncodingConfig, QFixConfig
from repro.db.database import Database
from repro.db.schema import AttributeSpec, Schema
from repro.queries.expressions import Attr, BinOp, Const, Param
from repro.queries.log import QueryLog
from repro.queries.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    TruePredicate,
)
from repro.queries.query import DeleteQuery, InsertQuery, UpdateQuery
from repro.service.serialize import (
    SerializationError,
    complaints_from_dict,
    complaints_to_dict,
    config_from_dict,
    config_to_dict,
    database_from_dict,
    database_to_dict,
    expr_from_dict,
    expr_to_dict,
    log_from_dict,
    log_to_dict,
    predicate_from_dict,
    predicate_to_dict,
    query_from_dict,
    query_to_dict,
    schema_from_dict,
    schema_to_dict,
)


def _json_round(value):
    """Force the payload through real JSON text, not just dicts."""
    return json.loads(json.dumps(value))


class TestExpressionCodec:
    def test_round_trip_all_node_kinds(self):
        expr = BinOp("+", BinOp("*", Attr("income"), Const(0.3)), Param("q1_p1", 5.0))
        assert expr_from_dict(_json_round(expr_to_dict(expr))) == expr

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            expr_from_dict({"kind": "lambda"})


class TestPredicateCodec:
    @pytest.mark.parametrize(
        "predicate",
        [
            TruePredicate(),
            FalsePredicate(),
            Comparison(Attr("a"), ">=", Param("p", 3.0)),
            And((Comparison(Attr("a"), ">", Const(1.0)), TruePredicate())),
            Or((Comparison(Attr("a"), "=", Const(1.0)), FalsePredicate())),
        ],
    )
    def test_round_trip(self, predicate):
        assert predicate_from_dict(_json_round(predicate_to_dict(predicate))) == predicate

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({"kind": "xor", "children": []})


class TestQueryCodec:
    def test_update_round_trip_preserves_params_and_label(self):
        query = UpdateQuery(
            "Taxes",
            {"owed": BinOp("*", Attr("income"), Const(0.3))},
            Comparison(Attr("income"), ">=", Param("q1_p1", 85_700.0)),
            label="q1",
        )
        restored = query_from_dict(_json_round(query_to_dict(query)))
        assert restored == query
        assert restored.label == "q1"
        assert restored.params() == {"q1_p1": 85_700.0}

    def test_insert_and_delete_round_trip(self):
        insert = InsertQuery("t", {"a": Param("q2_p1", 7.0), "b": Const(1.0)}, label="q2")
        delete = DeleteQuery("t", Comparison(Attr("a"), "<", Param("q3_p1", 2.0)), label="q3")
        assert query_from_dict(_json_round(query_to_dict(insert))) == insert
        assert query_from_dict(_json_round(query_to_dict(delete))) == delete

    def test_log_round_trip_preserves_order_and_sql(self):
        log = QueryLog(
            [
                UpdateQuery("t", {"a": Param("q1_p1", 1.0)}, label="q1"),
                DeleteQuery("t", Comparison(Attr("a"), ">", Const(5.0)), label="q2"),
            ]
        )
        restored = log_from_dict(_json_round(log_to_dict(log)))
        assert restored == log
        assert restored.render_sql() == log.render_sql()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            query_from_dict({"kind": "merge", "table": "t"})


class TestSchemaAndDatabaseCodec:
    def test_schema_round_trip(self):
        schema = Schema(
            "Taxes",
            (
                AttributeSpec("id", lower=0, upper=100, key=True, integral=True),
                AttributeSpec("income", lower=0, upper=300_000),
            ),
        )
        assert schema_from_dict(_json_round(schema_to_dict(schema))) == schema

    def test_database_round_trip_preserves_rids(self):
        schema = Schema.build("t", ["a", "b"], upper=10)
        database = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        database.delete(0)  # leave a rid gap, the hard case
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert restored.rids == database.rids
        assert restored.same_state(database)

    def test_database_round_trip_preserves_rid_counter(self):
        """Regression: deleting tail rows must not make replayed INSERTs reuse rids."""
        schema = Schema.build("t", ["a", "b"], upper=10)
        database = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": 5, "b": 6}])
        database.delete(2)  # tail delete: max(rid) is now 1 but the counter is 3
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert restored.table.next_rid == database.table.next_rid == 3
        assert restored.insert({"a": 7, "b": 8}).rid == database.insert({"a": 7, "b": 8}).rid


class TestComplaintCodec:
    def test_round_trip_all_kinds(self):
        complaints = ComplaintSet(
            [
                Complaint(0, {"a": 1.0, "b": 2.0}, True),  # value
                Complaint(1, None, True),  # removal
                Complaint(2, {"a": 5.0, "b": 6.0}, False),  # insertion
            ]
        )
        restored = complaints_from_dict(_json_round(complaints_to_dict(complaints)))
        assert restored.rids == complaints.rids
        for original, back in zip(complaints, restored):
            assert back == original
            assert back.kind is original.kind


class TestConfigCodec:
    def test_round_trip_non_default(self):
        config = QFixConfig.basic(
            solver="bnb",
            time_limit=None,
            diagnoser="basic",
            encoding=EncodingConfig(epsilon=0.25, delete_encoding="alive"),
        )
        assert config_from_dict(_json_round(config_to_dict(config))) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(SerializationError):
            config_from_dict({"solevr": "highs"})
        with pytest.raises(SerializationError):
            config_from_dict({"encoding": {"epsilonn": 1.0}})
