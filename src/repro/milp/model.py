"""The MILP model: variables, constraints, and an objective."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.milp.constraints import Constraint, Sense
from repro.milp.expr import LinExpr, as_linexpr
from repro.milp.solution import Solution
from repro.milp.variables import Variable, VarType

#: Default bound used for unbounded continuous helper variables.
DEFAULT_BOUND = 1e9


class Model:
    """A mixed-integer linear program under construction.

    The model collects variables and constraints, owns the (minimization)
    objective, and can export itself as dense/sparse matrices for the solver
    backends.  Variable names must be unique within a model.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._by_name: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._constraint_counter = 0
        #: big-M metadata for tightenable rows, keyed by constraint identity
        #: (:class:`Constraint` is frozen and names may repeat across helpers).
        self._big_m: dict[int, float] = {}

    # -- variables --------------------------------------------------------------

    def add_variable(
        self,
        name: str,
        *,
        lower: float = -DEFAULT_BOUND,
        upper: float = DEFAULT_BOUND,
        var_type: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a new decision variable."""
        if name in self._by_name:
            raise ModelError(f"duplicate variable name '{name}'")
        variable = Variable(name, len(self._variables), float(lower), float(upper), var_type)
        self._variables.append(variable)
        self._by_name[name] = variable
        return variable

    def add_continuous(self, name: str, lower: float = -DEFAULT_BOUND, upper: float = DEFAULT_BOUND) -> Variable:
        """Shorthand for a continuous variable."""
        return self.add_variable(name, lower=lower, upper=upper, var_type=VarType.CONTINUOUS)

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a binary variable."""
        return self.add_variable(name, lower=0.0, upper=1.0, var_type=VarType.BINARY)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = DEFAULT_BOUND) -> Variable:
        """Shorthand for a general integer variable."""
        return self.add_variable(name, lower=lower, upper=upper, var_type=VarType.INTEGER)

    def get_variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown variable '{name}'") from None

    def has_variable(self, name: str) -> bool:
        """Whether a variable with ``name`` exists."""
        return name in self._by_name

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables in creation order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_integer_variables(self) -> int:
        """Number of binary/integer variables (problem-difficulty metric)."""
        return sum(1 for variable in self._variables if variable.is_integral)

    # -- constraints ------------------------------------------------------------

    def add_constraint(
        self,
        expr: "LinExpr | Variable | float",
        sense: "Sense | str",
        rhs: "LinExpr | Variable | float",
        name: str | None = None,
    ) -> Constraint:
        """Add the constraint ``expr SENSE rhs``.

        Both sides may be expressions; the constraint is normalized so all
        variable terms move to the left and the right-hand side is a number.
        """
        if isinstance(sense, str):
            sense = Sense(sense)
        left = as_linexpr(expr)
        right = as_linexpr(rhs)
        normalized = left - right
        constant = normalized.constant
        normalized = normalized - constant
        if name is None:
            name = f"c{self._constraint_counter}"
        self._constraint_counter += 1
        constraint = Constraint(name, normalized, sense, -constant)
        self._validate_constraint(constraint)
        self._constraints.append(constraint)
        return constraint

    def add_equal(self, lhs, rhs, name: str | None = None) -> Constraint:  # type: ignore[no-untyped-def]
        """Shorthand for an equality constraint."""
        return self.add_constraint(lhs, Sense.EQ, rhs, name)

    def add_le(self, lhs, rhs, name: str | None = None) -> Constraint:  # type: ignore[no-untyped-def]
        """Shorthand for a ``<=`` constraint."""
        return self.add_constraint(lhs, Sense.LE, rhs, name)

    def add_ge(self, lhs, rhs, name: str | None = None) -> Constraint:  # type: ignore[no-untyped-def]
        """Shorthand for a ``>=`` constraint."""
        return self.add_constraint(lhs, Sense.GE, rhs, name)

    def _validate_constraint(self, constraint: Constraint) -> None:
        for variable in constraint.expr.variables():
            registered = self._by_name.get(variable.name)
            if registered is not variable:
                raise ModelError(
                    f"constraint '{constraint.name}' references variable "
                    f"'{variable.name}' that does not belong to this model"
                )

    def mark_big_m(self, constraint: Constraint, big_m: float) -> None:
        """Tag ``constraint`` as a big-M row built with constant ``big_m``.

        The linearization helpers call this for every indicator row they
        emit; the tag flows into the matrix export (``bigm_rows``) so the
        presolve can report how many declared big-M rows it tightened.
        """
        self._big_m[id(constraint)] = float(big_m)

    def big_m_of(self, constraint: Constraint) -> float | None:
        """The declared big-M constant of a row, or None when untagged."""
        return self._big_m.get(id(constraint))

    @property
    def num_big_m_constraints(self) -> int:
        """Number of rows tagged as big-M indicator rows."""
        return len(self._big_m)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        """All constraints in insertion order."""
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- objective ----------------------------------------------------------------

    def set_objective(self, expr: "LinExpr | Variable | float") -> None:
        """Set the (minimization) objective."""
        objective = as_linexpr(expr)
        for variable in objective.variables():
            if self._by_name.get(variable.name) is not variable:
                raise ModelError(
                    f"objective references variable '{variable.name}' "
                    "that does not belong to this model"
                )
        self._objective = objective

    def add_to_objective(self, expr: "LinExpr | Variable | float") -> None:
        """Add a term to the existing objective."""
        self.set_objective(self._objective + as_linexpr(expr))

    @property
    def objective(self) -> LinExpr:
        return self._objective

    # -- matrix export -------------------------------------------------------------

    def to_matrices(self) -> dict[str, object]:
        """Export the model with a ``scipy.sparse`` CSR constraint matrix.

        Returns a dict with keys ``c`` (objective coefficients), ``A``
        (constraint matrix, CSR — the QFix encoding is overwhelmingly sparse,
        so the dense form is never materialized), ``lb_con`` / ``ub_con``
        (constraint bounds), ``lb_var`` / ``ub_var`` (variable bounds), and
        ``integrality`` (1 for integral variables, 0 otherwise), and
        ``bigm_rows`` (per-row declared big-M constant, NaN for rows that are
        not tagged indicator rows).
        """
        arrays = self.to_sparse_arrays()
        A = sparse.csr_matrix(
            (arrays["data"], (arrays["rows"], arrays["cols"])),
            shape=(arrays["n_constraints"], len(arrays["c"])),
        )
        return {
            "c": arrays["c"],
            "A": A,
            "lb_con": arrays["lb_con"],
            "ub_con": arrays["ub_con"],
            "lb_var": arrays["lb_var"],
            "ub_var": arrays["ub_var"],
            "integrality": arrays["integrality"],
            "bigm_rows": arrays["bigm_rows"],
        }

    def to_sparse_arrays(self) -> dict[str, object]:
        """Export objective/bounds as dense vectors and constraints as COO triplets.

        This is the raw triplet form behind :meth:`to_matrices`; callers that
        want to assemble their own sparse matrix (or ship the triplets across
        a process boundary) can consume it directly.
        """
        n = len(self._variables)
        m = len(self._constraints)
        c = np.zeros(n)
        for variable, coeff in self._objective.terms.items():
            c[variable.index] = coeff
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        lb_con = np.full(m, -np.inf)
        ub_con = np.full(m, np.inf)
        bigm_rows = np.full(m, np.nan)
        for row, constraint in enumerate(self._constraints):
            declared = self._big_m.get(id(constraint))
            if declared is not None:
                bigm_rows[row] = declared
            for variable, coeff in constraint.expr.terms.items():
                rows.append(row)
                cols.append(variable.index)
                data.append(coeff)
            if constraint.sense is Sense.LE:
                ub_con[row] = constraint.rhs
            elif constraint.sense is Sense.GE:
                lb_con[row] = constraint.rhs
            else:
                lb_con[row] = constraint.rhs
                ub_con[row] = constraint.rhs
        lb_var = np.array([variable.lower for variable in self._variables])
        ub_var = np.array([variable.upper for variable in self._variables])
        integrality = np.array(
            [1 if variable.is_integral else 0 for variable in self._variables]
        )
        return {
            "c": c,
            "rows": np.array(rows, dtype=np.int64),
            "cols": np.array(cols, dtype=np.int64),
            "data": np.array(data, dtype=float),
            "n_constraints": m,
            "lb_con": lb_con,
            "ub_con": ub_con,
            "lb_var": lb_var,
            "ub_var": ub_var,
            "integrality": integrality,
            "bigm_rows": bigm_rows,
        }

    # -- verification ---------------------------------------------------------------

    def check_assignment(
        self,
        assignment: Mapping[str, float],
        *,
        tolerance: float = 1e-5,
    ) -> list[Constraint]:
        """Return the constraints violated by ``assignment`` (empty when feasible)."""
        named = dict(assignment)
        violated = []
        for constraint in self._constraints:
            if not constraint.satisfied_by(named, tolerance=tolerance):
                violated.append(constraint)
        return violated

    def objective_value(self, assignment: Mapping[str, float]) -> float:
        """Evaluate the objective under a (named) assignment."""
        return self._objective.evaluate(assignment)

    def evaluate_solution(self, solution: Solution, *, tolerance: float = 1e-5) -> bool:
        """Whether a solver solution satisfies every constraint."""
        if not solution:
            return False
        return not self.check_assignment(solution.values, tolerance=tolerance)

    # -- misc -----------------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Size statistics used by the experiment reports."""
        return {
            "variables": self.num_variables,
            "integer_variables": self.num_integer_variables,
            "constraints": self.num_constraints,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"int={self.num_integer_variables}, cons={self.num_constraints})"
        )


def variable_names(variables: Iterable[Variable]) -> list[str]:
    """Names of an iterable of variables (helper for tests)."""
    return [variable.name for variable in variables]
