"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools/wheel combination
predates PEP 660 editable installs (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
