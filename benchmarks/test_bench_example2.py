"""Example 2 / Figure 2 benchmark: the tax-bracket repair (paper: 35 ms)."""

from __future__ import annotations

import pytest

from repro.core.complaints import ComplaintSet
from repro.core.qfix import QFix
from repro.experiments.common import incremental_config
from repro.experiments.example2 import build_example
from repro.queries.executor import replay


@pytest.fixture(scope="module")
def example2_setup():
    schema, initial, corrupted_log, true_log = build_example()
    dirty = replay(initial, corrupted_log)
    truth = replay(initial, true_log)
    complaints = ComplaintSet.from_states(dirty, truth)
    return initial, dirty, corrupted_log, complaints


def test_tax_bracket_repair(benchmark, example2_setup):
    """End-to-end repair of the running example; the paper reports 35 ms."""
    initial, dirty, corrupted_log, complaints = example2_setup
    qfix = QFix(incremental_config(1))

    def run():
        result = qfix.diagnose(initial, dirty, corrupted_log, complaints)
        assert result.feasible
        return result

    benchmark(run)
