"""Diagnosing from an incomplete complaint set.

In practice only a fraction of data errors ever gets reported (the paper's
call-center setting).  This example corrupts one query of a 40-query synthetic
log, reports only 25% of the resulting errors to QFix, and shows that the
query-level repair still generalizes: replaying the repaired log fixes most of
the *unreported* errors as well, which no tuple-at-a-time cleaning approach
could do.

Run with::

    python examples/incomplete_complaints.py
"""

from repro import QFix, QFixConfig
from repro.core.metrics import evaluate_repair
from repro.workload import SyntheticConfig, SyntheticWorkloadGenerator, build_scenario


def main() -> None:
    config = SyntheticConfig(n_tuples=500, n_attributes=8, n_queries=40, seed=21)
    generator = SyntheticWorkloadGenerator(config)
    workload = generator.generate()

    scenario = build_scenario(
        workload,
        corruption_indices=[25],
        rng=5,
        complaint_fraction=0.25,  # only a quarter of the errors are reported
        corruptor=generator.corrupt_query,
    )
    print(
        f"true data errors: {len(scenario.full_complaints)}, "
        f"reported to QFix: {len(scenario.complaints)}"
    )

    qfix = QFix(QFixConfig.fully_optimized())
    result = qfix.diagnose(
        scenario.initial, scenario.dirty, scenario.corrupted_log, scenario.complaints
    )
    print("blamed query index:", result.changed_query_indices, "(true corruption: 25)")

    accuracy = evaluate_repair(
        scenario.initial, scenario.dirty, scenario.truth, result.repaired_log
    )
    print(
        f"errors fixed by the repair: {accuracy.errors_fixed} / {accuracy.true_errors} "
        f"(precision {accuracy.precision:.2f}, recall {accuracy.recall:.2f}, f1 {accuracy.f1:.2f})"
    )
    print(
        "note: recall is measured against ALL true errors, including the "
        f"{len(scenario.full_complaints) - len(scenario.complaints)} that were never reported."
    )


if __name__ == "__main__":
    main()
