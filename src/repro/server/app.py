"""Routing, dispatch, and the stdlib HTTP transport.

The layer splits in two so it stays testable without sockets:

* :class:`DiagnosisApp` — a framework-free WSGI-shaped core: a routing table
  of ``(method, path regex) -> handler`` plus :meth:`dispatch`, which turns
  ``(method, path, body)`` into a :class:`Response`.  Every dispatch is timed
  and recorded in the app's :class:`~repro.server.telemetry.Telemetry`;
  handler exceptions are mapped onto HTTP statuses here, in one place.
* :class:`DiagnosisServer` / :func:`make_server` / :func:`serve` — a
  :class:`http.server.ThreadingHTTPServer` front end that reads bodies
  (bounded by ``max_request_bytes``), calls :meth:`DiagnosisApp.dispatch`,
  and writes the response back.  Thread-per-connection is plenty here: each
  request's real work is a MILP solve, so the GIL is not the bottleneck and
  the service layer underneath is already lock-protected.

Routes
------
======  =================================  ========================================
POST    /v1/diagnose                       one request in, one response out
POST    /v1/batch                          JSONL in, JSONL out (engine thread pool)
POST    /v1/sessions                       create a repair session
GET     /v1/sessions                       list live sessions
GET     /v1/sessions/{id}                  session summary + current rows
DELETE  /v1/sessions/{id}                  retire a session
POST    /v1/sessions/{id}/queries          append queries (SQL or structural)
POST    /v1/sessions/{id}/complaints       register complaints
POST    /v1/sessions/{id}/diagnose         diagnose, cache the repair
POST    /v1/sessions/{id}/accept-repair    adopt the cached repair
POST    /v1/admin/snapshot                 force a durability snapshot (all shards)
GET     /v1/debug/traces                   flight recorder: recent/slow traces
GET     /v1/debug/traces/{id}              one recorded trace as a span tree
GET     /healthz                           liveness
GET     /metrics                           Prometheus text (or ``?format=json``)
======  =================================  ========================================
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.durability import DurabilityConfig, SessionJournal
from repro.exceptions import ReproError
from repro.obs import logs as obs_logs
from repro.obs.trace import Tracer, get_tracer
from repro.server import handlers
from repro.server.handlers import HTTPError
from repro.server.store import NoPendingRepair, SessionNotFound, SessionStore
from repro.server.telemetry import Telemetry
from repro.service.engine import DiagnosisEngine
from repro.service.serialize import SerializationError

#: Default cap on request bodies (16 MiB) — large enough for serious logs and
#: states, small enough that one client cannot balloon server memory.
DEFAULT_MAX_REQUEST_BYTES = 16 * 1024 * 1024

_LOGGER = obs_logs.get_logger("server")


@dataclass
class Request:
    """One parsed HTTP request as the handlers see it."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)
    query: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Request headers as received (original case preserved; see
    #: :func:`_header` for the case-insensitive lookup handlers use).
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    """One HTTP response as the handlers produce it."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""
    #: Extra response headers (e.g. ``Retry-After`` on a 429).
    headers: tuple[tuple[str, str], ...] = ()


def _header(headers: "dict[str, str] | None", name: str) -> str | None:
    """Case-insensitive header lookup (HTTP header names are)."""
    if not headers:
        return None
    lowered = name.lower()
    for key, value in headers.items():
        if key.lower() == lowered:
            return value
    return None


Handler = Callable[["DiagnosisApp", Request], Response]


@dataclass(frozen=True)
class Route:
    """One routing-table entry: method + compiled path pattern + handler."""

    method: str
    pattern: re.Pattern[str]
    handler: Handler
    #: Stable label for telemetry (the route template, not the concrete path,
    #: so ``/v1/sessions/abc`` and ``/v1/sessions/def`` aggregate together).
    label: str
    #: Whether the route triggers diagnosis work and therefore counts against
    #: the app's admission limit (``max_inflight``).
    gated: bool = False


def _route(method: str, template: str, handler: Handler, *, gated: bool = False) -> Route:
    """Compile ``/v1/sessions/{sid}/diagnose`` into a routing entry."""
    pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
    return Route(
        method, re.compile(f"^{pattern}$"), handler, f"{method} {template}", gated
    )


class AdmissionGate:
    """Bounded-concurrency admission control for diagnosis routes.

    The serving loop admits at most ``limit`` diagnosis-triggering requests at
    a time; the rest are answered ``429 Too Many Requests`` *before* any
    payload is parsed or any solver runs, so an overloaded server sheds load
    at the door instead of queueing unboundedly behind MILP solves.  The
    current depth is mirrored into the telemetry ``queue_depth`` gauge on
    every transition.
    """

    def __init__(self, limit: int, telemetry: Telemetry) -> None:
        if limit < 1:
            raise ReproError("max_inflight must be at least 1")
        self.limit = limit
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._depth = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def try_acquire(self) -> bool:
        # The gauge write stays inside the gate lock: updating it outside
        # would let a descheduled thread overwrite a newer depth with a
        # stale one (telemetry's own lock never takes this one, so the
        # nesting cannot deadlock).
        with self._lock:
            if self._depth >= self.limit:
                return False
            self._depth += 1
            self._telemetry.set_queue_depth(self._depth)
        return True

    def release(self) -> None:
        with self._lock:
            self._depth = max(0, self._depth - 1)
            self._telemetry.set_queue_depth(self._depth)


class DiagnosisApp:
    """The socket-free application core: routing table + dispatch.

    Parameters
    ----------
    engine:
        The :class:`DiagnosisEngine` all endpoints diagnose through.  Its
        ``max_workers`` governs ``/v1/batch`` fan-out.
    store:
        Session store; a fresh one over ``engine`` is created when omitted.
    telemetry:
        Counter sink; a fresh one is created when omitted.
    max_inflight:
        Admission-control limit: at most this many diagnosis-triggering
        requests (``/v1/diagnose``, ``/v1/batch``, session diagnose) may be
        in flight at once; excess requests are answered 429 with a
        ``Retry-After`` header.  ``None`` (the default) disables admission
        control.
    durability:
        Optional :class:`~repro.durability.DurabilityConfig`.  When given
        (and ``store`` is omitted), the app builds a
        :class:`~repro.durability.SessionJournal` over the configured data
        directory, recovers any sessions a previous process journaled there,
        and journals every session mutation before acknowledging it.  The
        journal's counters appear under ``durability`` in ``/metrics``.
    """

    def __init__(
        self,
        engine: DiagnosisEngine | None = None,
        *,
        store: SessionStore | None = None,
        telemetry: Telemetry | None = None,
        max_inflight: int | None = None,
        durability: DurabilityConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.engine = engine if engine is not None else DiagnosisEngine()
        # The process-wide tracer by default, so `configure_tracing` before
        # app construction (the CLI's order) wires the flight recorder in.
        self.tracer = tracer if tracer is not None else get_tracer()
        if store is None:
            journal = SessionJournal(durability) if durability is not None else None
            store = SessionStore(self.engine, journal=journal)
        self.store = store
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if self.store.journal is not None:
            self.telemetry.set_durability_source(self._durability_snapshot)
        self.gate = (
            AdmissionGate(max_inflight, self.telemetry)
            if max_inflight is not None
            else None
        )
        self.routes: tuple[Route, ...] = (
            _route("POST", "/v1/diagnose", handlers.handle_diagnose, gated=True),
            _route("POST", "/v1/batch", handlers.handle_batch, gated=True),
            _route("POST", "/v1/sessions", handlers.handle_session_create),
            _route("GET", "/v1/sessions", handlers.handle_session_list),
            _route("GET", "/v1/sessions/{sid}", handlers.handle_session_get),
            _route("DELETE", "/v1/sessions/{sid}", handlers.handle_session_delete),
            _route("POST", "/v1/sessions/{sid}/queries", handlers.handle_session_append),
            _route(
                "POST", "/v1/sessions/{sid}/complaints", handlers.handle_session_complaints
            ),
            _route(
                "POST",
                "/v1/sessions/{sid}/diagnose",
                handlers.handle_session_diagnose,
                gated=True,
            ),
            _route(
                "POST", "/v1/sessions/{sid}/accept-repair", handlers.handle_session_accept
            ),
            _route("POST", "/v1/admin/snapshot", handlers.handle_admin_snapshot),
            _route("GET", "/v1/debug/traces", handlers.handle_debug_traces),
            _route("GET", "/v1/debug/traces/{tid}", handlers.handle_debug_trace),
            _route("GET", "/healthz", handlers.handle_healthz),
            _route("GET", "/metrics", handlers.handle_metrics),
        )

    # -- durability ----------------------------------------------------------------

    def _durability_snapshot(self) -> dict[str, Any]:
        """The journal's counters plus the live per-shard session gauge."""
        journal = self.store.journal
        if journal is None:  # pragma: no cover - source is only set with a journal
            return {}
        snap = journal.stats_snapshot()
        counts = self.store.shard_session_counts()
        if counts is not None:
            snap["sessions_per_shard"] = counts
        return snap

    def close(self) -> None:
        """Flush and snapshot the store's journal (no-op without one)."""
        self.store.close()

    # -- dispatch ------------------------------------------------------------------

    def _match(self, method: str, path: str) -> tuple[Route | None, dict[str, str], bool]:
        """Find the route for ``method path``; also report path-only matches."""
        path_matched = False
        for route in self.routes:
            found = route.pattern.match(path)
            if found is None:
                continue
            path_matched = True
            if route.method == method:
                return route, dict(found.groupdict()), True
        return None, {}, path_matched

    def dispatch(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        headers: "dict[str, str] | None" = None,
    ) -> Response:
        """Route and serve one request; never raises.

        ``target`` is the request target as it appears on the request line —
        a path with an optional query string.  Handler exceptions are mapped
        to statuses: bad payloads → 400, unknown ids → 404, accept-without-
        repair → 409, anything unexpected → 500 (with the error named in the
        JSON body, never a traceback leak).

        An ``X-Trace-Id`` request header forces the request to be traced
        under that id (sampling otherwise follows the app's tracer); traced
        responses echo the id back in their own ``X-Trace-Id`` header.
        """
        start = time.perf_counter()
        split = urlsplit(target)
        path = split.path
        method = method.upper()
        route, params, path_matched = self._match(method, path)
        if route is None:
            if path_matched:
                response = _error_response(405, f"method {method} not allowed for {path}")
            else:
                response = _error_response(404, f"no route for {method} {path}")
            # Aggregate under one label per method, not the concrete path —
            # recording scanner-probed URLs verbatim would grow the telemetry
            # maps (and the /metrics payload) without bound.
            self.telemetry.record_rejected()
            self.telemetry.record_request(
                f"{method} <unmatched>", response.status, time.perf_counter() - start
            )
            return response

        if route.gated and self.gate is not None and not self.gate.try_acquire():
            # Shed load at the door: the queue is full, so answer 429 before
            # parsing the payload or touching the engine.  Retry-After is a
            # hint — one in-flight MILP solve is usually about a second.
            response = _error_response(
                429,
                f"server is at its diagnosis admission limit "
                f"({self.gate.limit} in flight); retry shortly",
                "AdmissionLimitExceeded",
            )
            response.headers = (("Retry-After", "1"),)
            self.telemetry.record_rejected()
            self.telemetry.record_request(
                route.label, response.status, time.perf_counter() - start
            )
            return response

        request = Request(
            method=method,
            path=path,
            params=params,
            query=dict(parse_qsl(split.query)),
            body=body,
            headers=dict(headers) if headers else {},
        )
        incoming_trace = _header(headers, "X-Trace-Id")
        root_span = self.tracer.trace(
            f"http {route.label}",
            trace_id=incoming_trace.strip() if incoming_trace else None,
            method=method,
            path=path,
        )
        admitted = route.gated and self.gate is not None
        try:
            # Error mapping happens *inside* the root span so the span always
            # records the status the client actually saw.
            with root_span:
                try:
                    response = route.handler(self, request)
                except HTTPError as error:
                    response = _error_response(
                        error.status, error.message, type(error).__name__
                    )
                except SessionNotFound as error:
                    response = _error_response(404, str(error), type(error).__name__)
                except NoPendingRepair as error:
                    response = _error_response(409, str(error), type(error).__name__)
                except SerializationError as error:
                    response = _error_response(400, str(error), type(error).__name__)
                except ReproError as error:
                    # Domain errors from deeper layers (full store, length
                    # mismatch…) are client-resolvable conflicts, not server
                    # faults.
                    response = _error_response(409, str(error), type(error).__name__)
                except Exception as error:  # noqa: BLE001 - the serving loop must survive
                    _LOGGER.error(
                        "unhandled %s serving %s: %s",
                        type(error).__name__,
                        route.label,
                        error,
                        extra={"trace_id": getattr(root_span, "trace_id", "") or ""},
                    )
                    response = _error_response(
                        500, f"internal error: {error}", type(error).__name__
                    )
                root_span.set_attribute("status_code", response.status)
                if response.status >= 500:
                    root_span.set_status("error")
        finally:
            if admitted:
                self.gate.release()
        if root_span.recording:
            response.headers = response.headers + (("X-Trace-Id", root_span.trace_id),)
        self.telemetry.record_request(
            route.label, response.status, time.perf_counter() - start
        )
        return response


def _error_response(status: int, message: str, error_type: str = "HTTPError") -> Response:
    payload = {"error": {"type": error_type, "message": message, "status": status}}
    return Response(
        status=status,
        content_type="application/json",
        body=json.dumps(payload).encode("utf-8"),
    )


# -- stdlib HTTP transport -------------------------------------------------------------


class DiagnosisServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`DiagnosisApp`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        app: DiagnosisApp,
        *,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        self.app = app
        self.max_request_bytes = max_request_bytes
        super().__init__(address, _HTTPRequestHandler)

    @property
    def port(self) -> int:
        """The actually bound port (useful with ephemeral ``port=0``)."""
        return int(self.server_address[1])


class _HTTPRequestHandler(BaseHTTPRequestHandler):
    """Thin adapter: read the body, call the app, write the response."""

    server: DiagnosisServer
    server_version = "qfix-server"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that promises Content-Length N and sends
    #: fewer bytes must not pin this handler thread forever (slowloris);
    #: BaseHTTPRequestHandler turns the timeout into a closed connection.
    timeout = 60

    # Silence the default stderr-per-request logging; telemetry covers it.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _read_body(self) -> bytes | None:
        """Read the request body, or answer 413/411 and return ``None``."""
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            if self.command in ("POST", "PUT"):
                self._write(_error_response(411, "Content-Length header is required"))
                self.server.app.telemetry.record_rejected()
                return None
            return b""
        try:
            length = int(raw_length)
        except ValueError:
            self._write(_error_response(400, "Content-Length is not an integer"))
            self.server.app.telemetry.record_rejected()
            return None
        if length < 0:
            # rfile.read(-1) would block until EOF, pinning this handler
            # thread for as long as the client keeps the connection open.
            self._write(_error_response(400, "Content-Length must be non-negative"))
            self.server.app.telemetry.record_rejected()
            return None
        if length > self.server.max_request_bytes:
            self._write(
                _error_response(
                    413,
                    f"request body of {length} bytes exceeds the limit of "
                    f"{self.server.max_request_bytes} bytes",
                )
            )
            self.server.app.telemetry.record_rejected()
            return None
        return self.rfile.read(length) if length else b""

    def _write(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _serve(self) -> None:
        body = self._read_body()
        if body is None:
            # The 413/411 was already written; drop the connection so an
            # unread oversized body cannot wedge keep-alive framing.
            self.close_connection = True
            return
        response = self.server.app.dispatch(
            self.command, self.path, body, headers=dict(self.headers.items())
        )
        self._write(response)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._serve()

    def do_POST(self) -> None:  # noqa: N802
        self._serve()

    def do_DELETE(self) -> None:  # noqa: N802
        self._serve()

    def do_PUT(self) -> None:  # noqa: N802
        self._serve()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    app: DiagnosisApp | None = None,
    engine: DiagnosisEngine | None = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    max_inflight: int | None = None,
    durability: DurabilityConfig | None = None,
    tracer: Tracer | None = None,
) -> DiagnosisServer:
    """Build a bound (but not yet serving) :class:`DiagnosisServer`.

    ``port=0`` binds an ephemeral port; read it back from ``server.port``.
    Call ``serve_forever()`` (often on a background thread) to start serving
    and ``shutdown()`` to stop.  ``max_inflight`` enables 429 admission
    control on the diagnosis routes; ``durability`` makes the session tier
    journal to disk and recover on startup (both ignored when ``app`` is
    supplied).
    """
    application = (
        app
        if app is not None
        else DiagnosisApp(
            engine, max_inflight=max_inflight, durability=durability, tracer=tracer
        )
    )
    return DiagnosisServer(
        (host, port), application, max_request_bytes=max_request_bytes
    )


def _install_shutdown_handlers(server: DiagnosisServer) -> None:
    """Route SIGTERM/SIGINT into a clean ``server.shutdown()``.

    ``shutdown()`` must not be called from the thread running
    ``serve_forever`` (it joins the loop), and certainly not from a signal
    handler interrupting that thread — so the handler hands off to a
    one-shot thread.  Repeat signals are no-ops while the first shutdown
    drains.  Only the main thread may install signal handlers; callers
    embedding :func:`serve` elsewhere simply keep Ctrl-C semantics.
    """
    fired = threading.Event()

    def _handle(signum: int, frame: Any) -> None:
        if fired.is_set():
            return
        fired.set()
        threading.Thread(
            target=server.shutdown, name="qfix-shutdown", daemon=True
        ).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _handle)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    engine: DiagnosisEngine | None = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    max_inflight: int | None = None,
    durability: DurabilityConfig | None = None,
    tracer: Tracer | None = None,
    ready_callback: Callable[[DiagnosisServer], None] | None = None,
) -> None:
    """Blocking convenience runner: build a server and serve until stopped.

    ``ready_callback`` (if given) receives the bound server right before the
    serving loop starts — the CLI uses it to print / persist the actual port.

    SIGTERM and SIGINT trigger a graceful stop (when running on the main
    thread): the accept loop exits, in-flight connections finish, and — when
    ``durability`` is set — the WAL is flushed and a final snapshot published
    before the process returns, so a routine restart replays nothing.
    """
    server = make_server(
        host,
        port,
        engine=engine,
        max_request_bytes=max_request_bytes,
        max_inflight=max_inflight,
        durability=durability,
        tracer=tracer,
    )
    if threading.current_thread() is threading.main_thread():
        _install_shutdown_handlers(server)
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        server.app.close()
