"""Atomic snapshot publication, generation listing, and pruning."""

import json
import os

from repro.durability.snapshot import (
    latest_snapshot,
    list_generations,
    load_snapshot,
    prune_below,
    snapshot_path,
    wal_path,
    write_snapshot,
)


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        payload = {"generation": 3, "sessions": [{"sid": "a"}]}
        path = write_snapshot(tmp_path, 3, payload)
        assert os.path.basename(path) == "snapshot-0000000003.json"
        assert load_snapshot(tmp_path, 3) == payload

    def test_no_tmp_residue_after_publish(self, tmp_path):
        write_snapshot(tmp_path, 1, {"sessions": []})
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_missing_and_garbage_load_as_none(self, tmp_path):
        assert load_snapshot(tmp_path, 9) is None
        with open(snapshot_path(tmp_path, 9), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert load_snapshot(tmp_path, 9) is None

    def test_non_dict_payload_loads_as_none(self, tmp_path):
        with open(snapshot_path(tmp_path, 2), "w", encoding="utf-8") as handle:
            json.dump([1, 2, 3], handle)
        assert load_snapshot(tmp_path, 2) is None


class TestGenerations:
    def test_listing_sorts_and_separates(self, tmp_path):
        write_snapshot(tmp_path, 2, {})
        write_snapshot(tmp_path, 1, {})
        open(wal_path(tmp_path, 2), "wb").close()
        open(wal_path(tmp_path, 3), "wb").close()
        snapshots, wals = list_generations(tmp_path)
        assert snapshots == [1, 2]
        assert wals == [2, 3]

    def test_missing_directory_lists_empty(self, tmp_path):
        assert list_generations(tmp_path / "absent") == ([], [])

    def test_latest_snapshot_prefers_newest_loadable(self, tmp_path):
        write_snapshot(tmp_path, 1, {"generation": 1})
        # Generation 2 published but then corrupted — "disks lie".
        write_snapshot(tmp_path, 2, {"generation": 2})
        with open(snapshot_path(tmp_path, 2), "w", encoding="utf-8") as handle:
            handle.write("garbage")
        generation, payload = latest_snapshot(tmp_path)
        assert generation == 1 and payload == {"generation": 1}

    def test_latest_snapshot_empty_dir_means_generation_zero(self, tmp_path):
        assert latest_snapshot(tmp_path) == (0, None)


class TestPrune:
    def test_prunes_old_generations_and_tmp_files(self, tmp_path):
        write_snapshot(tmp_path, 1, {})
        write_snapshot(tmp_path, 2, {})
        open(wal_path(tmp_path, 1), "wb").close()
        open(wal_path(tmp_path, 2), "wb").close()
        open(os.path.join(tmp_path, "snapshot-0000000009.json.tmp"), "wb").close()
        removed = prune_below(tmp_path, 2)
        names = sorted(os.listdir(tmp_path))
        assert names == ["snapshot-0000000002.json", "wal-0000000002.log"]
        assert len(removed) == 3

    def test_prune_ignores_unrelated_files(self, tmp_path):
        open(os.path.join(tmp_path, "durability.json"), "wb").close()
        write_snapshot(tmp_path, 1, {})
        prune_below(tmp_path, 5)
        assert "durability.json" in os.listdir(tmp_path)

    def test_prune_missing_directory_is_noop(self, tmp_path):
        assert prune_below(tmp_path / "absent", 3) == []
