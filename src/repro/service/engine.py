"""The diagnosis engine: config/solver wiring, request handling, batching.

:class:`DiagnosisEngine` is the service-grade entry point the ROADMAP's
production system is built around.  It owns the default configuration and
solver wiring and exposes three call shapes:

* :meth:`diagnose` — the in-process path: domain objects in,
  :class:`RepairResult` out, exceptions propagate.  ``QFix`` is a thin facade
  over this method.
* :meth:`submit` — the service path: a :class:`DiagnosisRequest` in, a
  :class:`DiagnosisResponse` out.  Never raises; failures are captured in the
  response (``ok=False``) so one bad request cannot take down a serving loop.
* :meth:`diagnose_batch` — thread-pool fan-out of :meth:`submit` over many
  independent requests, preserving input order.  Because each submit builds
  its own solver instance (unless the engine was constructed with an explicit
  shared solver), requests are fully isolated from each other.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, Mapping, Sequence

from repro.core.complaints import ComplaintSet
from repro.core.config import QFixConfig
from repro.core.repair import RepairResult
from repro.db.database import Database
from repro.exceptions import ReproError
from repro.milp.solvers.base import accepts_keyword
from repro.milp.solvers import Solver, get_solver
from repro.queries.log import QueryLog
from repro.service.registry import get_diagnoser
from repro.service.types import DiagnosisRequest, DiagnosisResponse


class DiagnosisEngine:
    """Owns solver/config wiring and serves diagnosis requests.

    Parameters
    ----------
    config:
        Default configuration for requests that carry no override.  Defaults
        to :meth:`QFixConfig.fully_optimized`.
    solver:
        Optional explicit solver instance shared by every request.  When
        omitted (the default), a fresh backend is instantiated per request
        from the effective config — the safe choice for
        :meth:`diagnose_batch`, where requests run on worker threads.
    max_workers:
        Default thread-pool width for :meth:`diagnose_batch` (per-call
        override still possible).  Deployment surfaces (the CLI ``batch`` and
        ``serve`` commands) configure concurrency here, once, instead of
        threading a pool size through every call site.
    """

    def __init__(
        self,
        config: QFixConfig | None = None,
        solver: Solver | None = None,
        *,
        max_workers: int = 4,
    ) -> None:
        if max_workers < 1:
            raise ReproError("max_workers must be at least 1")
        self.config = config if config is not None else QFixConfig.fully_optimized()
        self.max_workers = max_workers
        self._shared_solver = solver
        # Warm-start cache: (diagnoser, config, log/complaint fingerprint)
        # -> solver assignment of the last feasible repair.  Re-solving the
        # same encoding then starts from the previous repair instead of
        # ``-inf``; a stale hit is harmless (hints are validated before use).
        self._warm_lock = threading.Lock()
        self._warm_cache: "OrderedDict[Hashable, dict[str, float]]" = OrderedDict()
        self._warm_hits = 0
        self._warm_misses = 0

    def _solver_for(self, config: QFixConfig) -> Solver:
        if self._shared_solver is not None:
            return self._shared_solver
        return get_solver(
            config.solver,
            time_limit=config.time_limit,
            mip_gap=config.mip_gap,
            use_presolve=config.use_presolve,
        )

    # -- warm-start cache --------------------------------------------------------

    #: Maximum number of cached warm starts (LRU-evicted beyond this).
    WARM_CACHE_MAX = 64

    def _warm_lookup(self, key: Hashable) -> dict[str, float] | None:
        with self._warm_lock:
            values = self._warm_cache.get(key)
            if values is None:
                self._warm_misses += 1
                return None
            self._warm_cache.move_to_end(key)
            self._warm_hits += 1
            return dict(values)

    def _warm_store(self, key: Hashable, values: Mapping[str, float]) -> None:
        if not values:
            return
        with self._warm_lock:
            self._warm_cache[key] = dict(values)
            self._warm_cache.move_to_end(key)
            while len(self._warm_cache) > self.WARM_CACHE_MAX:
                self._warm_cache.popitem(last=False)

    def warm_cache_info(self) -> dict[str, int]:
        """Warm-start cache statistics (size, hits, misses)."""
        with self._warm_lock:
            return {
                "size": len(self._warm_cache),
                "hits": self._warm_hits,
                "misses": self._warm_misses,
            }

    # -- in-process path ---------------------------------------------------------

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        diagnoser: str | None = None,
        config: QFixConfig | None = None,
        solver: Solver | None = None,
        warm_key: Hashable | None = None,
    ) -> RepairResult:
        """Run one diagnosis and return the :class:`RepairResult`.

        ``diagnoser`` overrides the config's ``diagnoser`` field; both default
        to ``"auto"``.  ``solver`` overrides the engine's solver wiring for
        this call (the ``QFix`` facade uses this to keep its historical
        one-solver-per-instance behaviour).  Exceptions propagate to the
        caller — use :meth:`submit` for the never-raises service path.

        The engine keeps a bounded warm-start cache: a repeat diagnosis of
        the same (log, complaints, config) hands the previous repair's solver
        assignment to the diagnoser as an incumbent hint.  ``warm_key`` lets
        long-lived callers (sessions) supply a cheap pre-computed cache key
        instead of paying the log fingerprint on every call.
        """
        effective = config if config is not None else self.config
        name = diagnoser if diagnoser is not None else effective.diagnoser
        if complaints.is_empty():
            raise ReproError("the complaint set is empty; nothing to diagnose")
        algorithm = get_diagnoser(name)
        cache_key = (
            name,
            effective,
            warm_key if warm_key is not None else diagnosis_fingerprint(log, complaints),
        )
        result = _call_diagnoser(
            algorithm,
            initial,
            final,
            log,
            complaints,
            config=effective,
            solver=solver if solver is not None else self._solver_for(effective),
            warm_start=self._warm_lookup(cache_key),
        )
        if result.feasible and result.solution_values:
            self._warm_store(cache_key, result.solution_values)
        return result

    # -- service path ------------------------------------------------------------

    def submit(self, request: DiagnosisRequest) -> DiagnosisResponse:
        """Handle one request, capturing any failure in the response.

        The returned response echoes ``request.request_id``.  ``ok=False``
        responses carry the exception type and message instead of a repair.
        """
        start = time.perf_counter()
        config = request.config if request.config is not None else self.config
        name = request.diagnoser if request.diagnoser is not None else config.diagnoser
        try:
            final = request.resolved_final()
            result = self.diagnose(
                request.initial,
                final,
                request.log,
                request.complaints,
                diagnoser=name,
                config=config,
            )
        except Exception as error:  # noqa: BLE001 - isolation boundary
            return DiagnosisResponse.from_error(
                request.request_id,
                name,
                error,
                elapsed_seconds=time.perf_counter() - start,
            )
        return DiagnosisResponse.from_result(
            request.request_id,
            name,
            result,
            elapsed_seconds=time.perf_counter() - start,
        )

    def diagnose_batch(
        self,
        requests: Iterable[DiagnosisRequest],
        *,
        max_workers: int | None = None,
    ) -> list[DiagnosisResponse]:
        """Serve many independent requests concurrently.

        Responses come back in input order.  Each request is handled by
        :meth:`submit`, so a crashing or infeasible case yields an
        ``ok=False`` / ``feasible=False`` response without affecting its
        neighbours.  ``max_workers`` defaults to the engine's configured
        pool width.
        """
        items: Sequence[DiagnosisRequest] = list(requests)
        if not items:
            return []
        workers = max_workers if max_workers is not None else self.max_workers
        if workers < 1:
            raise ReproError("max_workers must be at least 1")
        if workers == 1 or len(items) == 1:
            return [self.submit(request) for request in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.submit, items))

    def run_matrix(
        self,
        cells: "Mapping[str, DiagnosisRequest] | Iterable[tuple[str, DiagnosisRequest]]",
        *,
        max_workers: int | None = None,
    ) -> dict[str, DiagnosisResponse]:
        """Serve a keyed batch of requests: ``{cell_id: request}`` in, ``{cell_id: response}`` out.

        This is the entry point of the scenario harness (:mod:`repro.harness`)
        — a sweep over a matrix of scenario/config cells goes through the same
        :meth:`submit` / :meth:`diagnose_batch` machinery as production
        traffic, so harness results certify the serving path itself.  Each
        response's ``request_id`` is overwritten with its cell id, making the
        mapping self-describing even after serialization.

        Duplicate cell ids are rejected: two cells would otherwise silently
        collapse into one result.
        """
        pairs = list(cells.items()) if isinstance(cells, Mapping) else list(cells)
        seen: set[str] = set()
        for cell_id, _ in pairs:
            if cell_id in seen:
                raise ReproError(f"duplicate matrix cell id {cell_id!r}")
            seen.add(cell_id)
        responses = self.diagnose_batch(
            [request for _, request in pairs], max_workers=max_workers
        )
        keyed: dict[str, DiagnosisResponse] = {}
        for (cell_id, _), response in zip(pairs, responses):
            response.request_id = cell_id
            keyed[cell_id] = response
        return keyed


def diagnosis_fingerprint(log: QueryLog, complaints: ComplaintSet) -> Hashable:
    """Stable fingerprint of a (log, complaints) pair for warm-start keying.

    Two calls with the same rendered log and the same complaint targets map
    to the same key, so a repeat diagnosis reuses the cached solver
    assignment.  Collisions are merely a performance hazard, never a
    correctness one: solvers validate hints before seeding an incumbent.
    """
    return (log.render_sql(), complaint_fingerprint(complaints))


def complaint_fingerprint(complaints: ComplaintSet) -> Hashable:
    """Stable fingerprint of a complaint set (rids, targets, dirty presence)."""
    return tuple(
        sorted(
            (
                complaint.rid,
                complaint.exists_in_dirty,
                None
                if complaint.target is None
                else tuple(sorted(complaint.target.items())),
            )
            for complaint in complaints
        )
    )


def _call_diagnoser(
    algorithm: "object",
    initial: Database,
    final: Database,
    log: QueryLog,
    complaints: ComplaintSet,
    *,
    config: QFixConfig,
    solver: Solver,
    warm_start: "dict[str, float] | None",
) -> RepairResult:
    """Invoke a diagnoser, forwarding ``warm_start`` only when it accepts it.

    Custom diagnosers registered before the warm-start API existed keep
    working — they just solve cold.
    """
    if warm_start is not None and accepts_keyword(algorithm.diagnose, "warm_start"):
        return algorithm.diagnose(
            initial,
            final,
            log,
            complaints,
            config=config,
            solver=solver,
            warm_start=warm_start,
        )
    return algorithm.diagnose(
        initial, final, log, complaints, config=config, solver=solver
    )


def serve_jsonl_lines(
    engine: DiagnosisEngine, lines: Iterable[str]
) -> list[DiagnosisResponse]:
    """Serve JSONL :class:`DiagnosisRequest` lines, one response per request.

    This is the shared contract behind the CLI ``batch`` command and the HTTP
    ``POST /v1/batch`` endpoint: blank lines are skipped, a malformed line
    becomes an ``ok=False`` response *in place* (with the caller's
    ``request_id`` echoed when the JSON parsed far enough to carry one,
    ``line-<n>`` otherwise), and output order matches input order.
    """
    requests: list[DiagnosisRequest | None] = []
    parse_failures: dict[int, DiagnosisResponse] = {}
    for index, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        request_id = f"line-{index + 1}"
        try:
            payload = json.loads(text)
            # The payload parsed: echo the caller's correlation id even if the
            # request itself turns out to be malformed.
            if isinstance(payload, Mapping) and payload.get("request_id"):
                request_id = str(payload["request_id"])
            requests.append(DiagnosisRequest.from_dict(payload))
        except Exception as error:  # noqa: BLE001 - isolation boundary
            parse_failures[len(requests)] = DiagnosisResponse.from_error(
                request_id, "", error
            )
            requests.append(None)

    served = engine.diagnose_batch(
        [request for request in requests if request is not None]
    )
    iterator = iter(served)
    return [
        parse_failures[index] if request is None else next(iterator)
        for index, request in enumerate(requests)
    ]
