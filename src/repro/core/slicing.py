"""Slicing optimizations: query impact analysis (Section 5.2 / 5.3).

The functions here implement Definitions 6 and 7 and Algorithm 2 of the paper:

* :func:`full_impact` propagates a query's *direct impact* (attributes written
  by its SET clause) through the rest of the log, producing ``F(q)``.
* :func:`relevant_queries` selects the queries whose full impact overlaps the
  complaint attributes ``A(C)`` — the candidates for repair (``Rel(Q)``).
* :func:`relevant_attributes` computes ``Rel(A)``, the attributes that need to
  be encoded at all (attribute slicing).
* :func:`compact_log` drops queries that provably cannot influence the encoded
  attribute set, with bookkeeping (:class:`CompactedLog`) that maps the
  surviving positions back to original log indices.

A DELETE query reports a wildcard ``"*"`` in its direct impact (removing a
tuple affects every attribute); the helpers below expand the wildcard against
the schema.

Implementation note: impact sets are computed in a single backward pass over
the log with attribute sets packed into integer bitmasks.  Two early exits
keep the pass near-linear on long histories of point updates: the inner scan
stops as soon as no later query reads anything the running impact could reach
(``suffix_dep``), or as soon as nothing remains downstream that the impact
does not already carry (``suffix_gain``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db.schema import Schema
from repro.queries.log import QueryLog
from repro.queries.query import InsertQuery, Query

#: Wildcard used by DELETE queries to mean "all attributes".
WILDCARD = "*"


def _expand(attributes: frozenset[str], schema: Schema) -> frozenset[str]:
    """Expand the DELETE wildcard into the concrete attribute set."""
    if WILDCARD in attributes:
        return frozenset(schema.attribute_names)
    return attributes


def direct_impact(query: Query, schema: Schema) -> frozenset[str]:
    """``I(q)``: attributes written by the query."""
    return _expand(query.direct_impact(), schema)


def dependency(query: Query, schema: Schema) -> frozenset[str]:
    """``P(q)``: attributes read by the query's condition / SET expressions."""
    return _expand(query.dependency(), schema)


class _MaskSpace:
    """Bidirectional mapping between attribute names and bitmask positions.

    Schema attributes get the low bits; attribute names a query mentions
    beyond the schema (defensive — well-formed logs never do) are assigned
    fresh bits lazily so the set semantics match the frozenset-based
    definitions exactly.
    """

    __slots__ = ("_bits", "_names", "_schema_mask")

    def __init__(self, schema: Schema) -> None:
        self._names: list[str] = list(schema.attribute_names)
        self._bits: dict[str, int] = {
            name: 1 << position for position, name in enumerate(self._names)
        }
        self._schema_mask = (1 << len(self._names)) - 1

    def mask(self, attributes: frozenset[str]) -> int:
        """Pack an attribute set (wildcard-expanded) into a bitmask."""
        if WILDCARD in attributes:
            # The wildcard replaces the whole set, mirroring ``_expand``.
            return self._schema_mask
        mask = 0
        for name in attributes:
            bit = self._bits.get(name)
            if bit is None:
                bit = 1 << len(self._names)
                self._bits[name] = bit
                self._names.append(name)
            mask |= bit
        return mask

    def names(self, mask: int) -> frozenset[str]:
        """Unpack a bitmask into the attribute-name set."""
        return frozenset(
            name for name, bit in self._bits.items() if mask & bit
        )


def _impact_masks(
    queries: Sequence[Query], schema: Schema
) -> tuple[list[int], _MaskSpace]:
    """``F(q)`` for every query as bitmasks, in one backward pass.

    This is the memoized dynamic program of Algorithm 2: scanning right to
    left, each query's impact starts from its direct impact and absorbs the
    (already final) full impact of every later query whose dependency it
    overlaps.  ``suffix_dep[j]`` is the union of dependencies of queries
    ``j..n-1`` and ``suffix_gain[j]`` the union of their impacts; both allow
    the inner scan to stop early once nothing later can be triggered or
    nothing new can be absorbed.
    """
    space = _MaskSpace(schema)
    n = len(queries)
    direct = [space.mask(query.direct_impact()) for query in queries]
    dep = [space.mask(query.dependency()) for query in queries]
    impacts = [0] * n
    suffix_dep = [0] * (n + 1)
    suffix_gain = [0] * (n + 1)
    for index in range(n - 1, -1, -1):
        impact = direct[index]
        for later in range(index + 1, n):
            if not impact & suffix_dep[later]:
                break  # no query at or after ``later`` reads anything we wrote
            if not suffix_gain[later] & ~impact:
                break  # nothing downstream that the impact does not carry yet
            if impact & dep[later]:
                impact |= impacts[later]
        impacts[index] = impact
        suffix_dep[index] = suffix_dep[index + 1] | dep[index]
        suffix_gain[index] = suffix_gain[index + 1] | impact
    return impacts, space


def full_impact(
    log: QueryLog | Sequence[Query], index: int, schema: Schema
) -> frozenset[str]:
    """``F(q_index)``: the transitive impact of a query on later attributes.

    Implements Algorithm 2 (FullImpact) via the shared backward pass; use
    :func:`all_full_impacts` when more than one index is needed — the whole
    log costs the same single pass as one query.
    """
    queries = list(log)
    if not 0 <= index < len(queries):
        raise IndexError(f"query index {index} out of range")
    masks, space = _impact_masks(queries, schema)
    return space.names(masks[index])


def all_full_impacts(
    log: QueryLog | Sequence[Query], schema: Schema
) -> list[frozenset[str]]:
    """``F(q)`` for every query in the log (computed in one backward pass)."""
    queries = list(log)
    masks, space = _impact_masks(queries, schema)
    return [space.names(mask) for mask in masks]


def relevant_queries(
    log: QueryLog | Sequence[Query],
    complaint_attributes: frozenset[str],
    schema: Schema,
    *,
    single_fault: bool = False,
    impacts: Sequence[frozenset[str]] | None = None,
) -> list[int]:
    """Indices of the repair candidates ``Rel(Q)``.

    A query is a candidate when its full impact overlaps ``A(C)``.  When
    ``single_fault`` is true the stricter condition of Section 5.2 applies:
    the (single) corrupted query must cover *all* complaint attributes, so
    only queries with ``F(q) ⊇ A(C)`` remain candidates.  ``impacts`` lets
    callers that already ran :func:`all_full_impacts` skip the backward pass.
    """
    queries = list(log)
    if not complaint_attributes:
        return list(range(len(queries)))
    if impacts is None:
        impacts = all_full_impacts(queries, schema)
    candidates = []
    for index, impact in enumerate(impacts):
        overlap = impact & complaint_attributes
        if single_fault:
            if overlap == complaint_attributes:
                candidates.append(index)
        elif overlap:
            candidates.append(index)
    return candidates


def relevant_attributes(
    log: QueryLog | Sequence[Query],
    candidate_indices: Sequence[int],
    complaint_attributes: frozenset[str],
    schema: Schema,
    *,
    impacts: Sequence[frozenset[str]] | None = None,
) -> frozenset[str]:
    """``Rel(A)``: attributes that must be encoded (attribute slicing).

    This is the union of the complaint attributes with the full impact and
    dependency of every candidate query.  ``impacts`` lets callers reuse the
    impact sets they already computed for :func:`relevant_queries`.
    """
    queries = list(log)
    relevant: set[str] = set(complaint_attributes)
    if impacts is None:
        impacts = all_full_impacts(queries, schema)
    for index in candidate_indices:
        relevant |= impacts[index]
        relevant |= dependency(queries[index], schema)
    return frozenset(relevant)


@dataclass(frozen=True)
class CompactedLog:
    """A log with provably irrelevant queries removed, plus index bookkeeping.

    ``log`` holds the surviving queries in their original order;
    ``kept_indices[i]`` is the original log position of ``log[i]``.  Parameter
    names are globally unique across a log, so a repair of the compacted log
    applies to the original log verbatim through ``QueryLog.with_params`` —
    the index maps exist for reporting (windows, candidate sets, changed-query
    indices), not for parameter translation.
    """

    log: QueryLog
    kept_indices: tuple[int, ...]
    original_size: int

    @property
    def dropped(self) -> int:
        """How many queries compaction removed."""
        return self.original_size - len(self.kept_indices)

    def index_map(self) -> dict[int, int]:
        """Mapping from original log index to compacted position."""
        return {original: position for position, original in enumerate(self.kept_indices)}

    def remap(self, original_indices: Sequence[int]) -> list[int]:
        """Translate original indices to compacted positions (absent ones drop)."""
        mapping = self.index_map()
        return [mapping[index] for index in original_indices if index in mapping]

    def to_original(self, compacted_indices: Sequence[int]) -> tuple[int, ...]:
        """Translate compacted positions back to original log indices."""
        return tuple(self.kept_indices[index] for index in compacted_indices)


def compact_log(
    log: QueryLog | Sequence[Query],
    encoded_attributes: frozenset[str],
    schema: Schema,
    *,
    impacts: Sequence[frozenset[str]] | None = None,
) -> CompactedLog:
    """Drop queries that provably cannot influence ``encoded_attributes``.

    A query survives when it is an INSERT (removing it would change which
    rids exist downstream) or when its full impact intersects the encoded
    attribute set.  Dropping the rest is exact: ``F`` is transitive through
    reads, so a dropped query's writes can never reach an encoded attribute
    — directly or through any chain of later predicates and SET expressions
    — and no surviving non-INSERT query reads anything a dropped query wrote
    (such a reader's impact would be absorbed into the dropped query's,
    contradicting the drop).  DELETEs carry the wildcard impact and are
    therefore always kept, preserving tuple liveness exactly.
    """
    queries = list(log)
    if impacts is None:
        impacts = all_full_impacts(queries, schema)
    kept = tuple(
        index
        for index, query in enumerate(queries)
        if isinstance(query, InsertQuery) or impacts[index] & encoded_attributes
    )
    source = log if isinstance(log, QueryLog) else QueryLog(queries)
    if len(kept) == len(queries):
        compacted = source
    else:
        compacted = QueryLog(queries[index] for index in kept)
    return CompactedLog(log=compacted, kept_indices=kept, original_size=len(queries))
