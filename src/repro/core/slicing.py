"""Slicing optimizations: query impact analysis (Section 5.2 / 5.3).

The functions here implement Definitions 6 and 7 and Algorithm 2 of the paper:

* :func:`full_impact` propagates a query's *direct impact* (attributes written
  by its SET clause) through the rest of the log, producing ``F(q)``.
* :func:`relevant_queries` selects the queries whose full impact overlaps the
  complaint attributes ``A(C)`` — the candidates for repair (``Rel(Q)``).
* :func:`relevant_attributes` computes ``Rel(A)``, the attributes that need to
  be encoded at all (attribute slicing).

A DELETE query reports a wildcard ``"*"`` in its direct impact (removing a
tuple affects every attribute); the helpers below expand the wildcard against
the schema.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.schema import Schema
from repro.queries.log import QueryLog
from repro.queries.query import Query

#: Wildcard used by DELETE queries to mean "all attributes".
WILDCARD = "*"


def _expand(attributes: frozenset[str], schema: Schema) -> frozenset[str]:
    """Expand the DELETE wildcard into the concrete attribute set."""
    if WILDCARD in attributes:
        return frozenset(schema.attribute_names)
    return attributes


def direct_impact(query: Query, schema: Schema) -> frozenset[str]:
    """``I(q)``: attributes written by the query."""
    return _expand(query.direct_impact(), schema)


def dependency(query: Query, schema: Schema) -> frozenset[str]:
    """``P(q)``: attributes read by the query's condition / SET expressions."""
    return _expand(query.dependency(), schema)


def full_impact(
    log: QueryLog | Sequence[Query], index: int, schema: Schema
) -> frozenset[str]:
    """``F(q_index)``: the transitive impact of a query on later attributes.

    Implements Algorithm 2 (FullImpact): starting from the query's direct
    impact, absorb the full impact of every later query whose dependency
    overlaps the running impact set.
    """
    queries = list(log)
    if not 0 <= index < len(queries):
        raise IndexError(f"query index {index} out of range")
    impact = set(direct_impact(queries[index], schema))
    # Pre-compute the (memoized) full impact of later queries from the back.
    later_impacts = _full_impacts_suffix(queries, schema)
    for later in range(index + 1, len(queries)):
        if impact & dependency(queries[later], schema):
            impact |= later_impacts[later]
    return frozenset(impact)


def all_full_impacts(
    log: QueryLog | Sequence[Query], schema: Schema
) -> list[frozenset[str]]:
    """``F(q)`` for every query in the log (computed in one backward pass)."""
    queries = list(log)
    suffix = _full_impacts_suffix(queries, schema)
    results: list[frozenset[str]] = []
    for index in range(len(queries)):
        impact = set(direct_impact(queries[index], schema))
        for later in range(index + 1, len(queries)):
            if impact & dependency(queries[later], schema):
                impact |= suffix[later]
        results.append(frozenset(impact))
    return results


def _full_impacts_suffix(
    queries: Sequence[Query], schema: Schema
) -> list[frozenset[str]]:
    """Full impact of each query computed right-to-left (dynamic program)."""
    impacts: list[frozenset[str]] = [frozenset()] * len(queries)
    for index in range(len(queries) - 1, -1, -1):
        impact = set(direct_impact(queries[index], schema))
        for later in range(index + 1, len(queries)):
            if impact & dependency(queries[later], schema):
                impact |= impacts[later]
        impacts[index] = frozenset(impact)
    return impacts


def relevant_queries(
    log: QueryLog | Sequence[Query],
    complaint_attributes: frozenset[str],
    schema: Schema,
    *,
    single_fault: bool = False,
) -> list[int]:
    """Indices of the repair candidates ``Rel(Q)``.

    A query is a candidate when its full impact overlaps ``A(C)``.  When
    ``single_fault`` is true the stricter condition of Section 5.2 applies:
    the (single) corrupted query must cover *all* complaint attributes, so
    only queries with ``F(q) ⊇ A(C)`` remain candidates.
    """
    if not complaint_attributes:
        return list(range(len(list(log))))
    impacts = all_full_impacts(log, schema)
    candidates = []
    for index, impact in enumerate(impacts):
        overlap = impact & complaint_attributes
        if single_fault:
            if overlap == complaint_attributes:
                candidates.append(index)
        elif overlap:
            candidates.append(index)
    return candidates


def relevant_attributes(
    log: QueryLog | Sequence[Query],
    candidate_indices: Sequence[int],
    complaint_attributes: frozenset[str],
    schema: Schema,
) -> frozenset[str]:
    """``Rel(A)``: attributes that must be encoded (attribute slicing).

    This is the union of the complaint attributes with the full impact and
    dependency of every candidate query.
    """
    queries = list(log)
    relevant: set[str] = set(complaint_attributes)
    impacts = all_full_impacts(queries, schema)
    for index in candidate_indices:
        relevant |= impacts[index]
        relevant |= dependency(queries[index], schema)
    return frozenset(relevant)
