"""Differential regression: HiGHS vs. branch-and-bound on full diagnoser runs.

PR 3's property suite pinned backend agreement on *random MILP models*; this
extends it to the real thing — complete diagnoser runs over the figure 4 and
figure 9 scenarios (synthetic log-growth and the TPC-C / TATP benchmarks).
Both backends must agree on feasibility and on the minimized repair distance,
and both repairs must resolve every complaint.
"""

from __future__ import annotations

import pytest

from repro.core.config import QFixConfig
from repro.core.repair import repair_resolves_complaints
from repro.experiments.common import synthetic_scenario
from repro.harness.oracle import DISTANCE_TOLERANCE
from repro.service.engine import DiagnosisEngine
from repro.workload.scenario import build_scenario
from repro.workload.tatp import TATPConfig, TATPWorkloadGenerator
from repro.workload.tpcc import TPCCConfig, TPCCWorkloadGenerator


def _figure4_scenario(seed: int = 0):
    """The smallest cell of figure 4's sweep (10-query log, first query bad)."""
    return synthetic_scenario(
        n_tuples=60, n_queries=10, corruption_indices=[0], seed=seed
    )


def _figure9_scenario(benchmark: str, seed: int = 0):
    """A scaled-down figure 9 scenario (single late corruption)."""
    if benchmark == "tpcc":
        generator = TPCCWorkloadGenerator(TPCCConfig(n_initial_orders=60, n_queries=30))
    else:
        generator = TATPWorkloadGenerator(TATPConfig(n_subscribers=60, n_queries=30))
    workload = generator.generate()
    index = len(workload.log) - 3
    while not workload.log[index].params():
        index -= 1
    return build_scenario(
        workload, [index], rng=seed, corruptor=generator.corrupt_query
    )


def _diagnose_with(scenario, solver_name: str, diagnoser: str):
    config = QFixConfig.fully_optimized(solver=solver_name, time_limit=30.0)
    engine = DiagnosisEngine(config)
    return engine.diagnose(
        scenario.initial,
        scenario.dirty,
        scenario.corrupted_log,
        scenario.complaints,
        diagnoser=diagnoser,
    )


@pytest.mark.parametrize(
    "scenario_factory",
    [
        pytest.param(lambda: _figure4_scenario(), id="figure4-synthetic"),
        pytest.param(lambda: _figure9_scenario("tpcc"), id="figure9-tpcc"),
        pytest.param(lambda: _figure9_scenario("tatp"), id="figure9-tatp"),
    ],
)
def test_backends_agree_on_figure_scenarios(scenario_factory):
    scenario = scenario_factory()
    assert scenario.has_errors, "figure scenario lost its observable corruption"
    highs = _diagnose_with(scenario, "highs", "incremental")
    bnb = _diagnose_with(scenario, "branch-and-bound", "incremental")

    assert highs.feasible and bnb.feasible
    assert highs.distance == pytest.approx(bnb.distance, abs=DISTANCE_TOLERANCE)
    for result in (highs, bnb):
        assert repair_resolves_complaints(
            scenario.initial, result.repaired_log, scenario.complaints
        )


def test_highs_survives_its_own_presolve_bug_on_wide_domains():
    """Regression: harness-discovered HiGHS failure on big-M TATP encodings.

    HiGHS's internal presolve reports "Status 4: Solve error" on the basic
    (all-queries-parameterized) encoding of TATP-sized domains (2^16
    locations); branch-and-bound proves the same model optimal.  The backend
    now retries with HiGHS presolve disabled, and both backends must agree.
    """
    from repro.workload import ScenarioSpec, build_spec_scenario

    spec = ScenarioSpec(
        family="tatp",
        corruption="set-clause",
        position="late",
        n_tuples=25,
        n_queries=8,
        seed=7,
    )
    scenario = build_spec_scenario(spec)
    results = {}
    for solver_name in ("highs", "branch-and-bound"):
        engine = DiagnosisEngine(
            QFixConfig.basic(solver=solver_name, time_limit=60.0)
        )
        results[solver_name] = engine.diagnose(
            scenario.initial,
            scenario.dirty,
            scenario.corrupted_log,
            scenario.complaints,
            diagnoser="basic",
        )
    highs, bnb = results["highs"], results["branch-and-bound"]
    assert highs.feasible, highs.message
    assert bnb.feasible, bnb.message
    assert highs.distance == pytest.approx(bnb.distance, abs=DISTANCE_TOLERANCE)


def test_backends_agree_on_figure4_basic_diagnoser():
    """The global (basic) encoding agrees across backends too."""
    scenario = _figure4_scenario(seed=1)
    config = QFixConfig.basic(
        tuple_slicing=True, refinement=True, attribute_slicing=True, time_limit=30.0
    )
    results = {}
    for solver_name in ("highs", "branch-and-bound"):
        engine = DiagnosisEngine(config.with_overrides(solver=solver_name))
        results[solver_name] = engine.diagnose(
            scenario.initial,
            scenario.dirty,
            scenario.corrupted_log,
            scenario.complaints,
            diagnoser="basic",
        )
    highs, bnb = results["highs"], results["branch-and-bound"]
    assert highs.feasible and bnb.feasible
    assert highs.distance == pytest.approx(bnb.distance, abs=DISTANCE_TOLERANCE)


def _tatp_spec():
    from repro.workload import ScenarioSpec

    return ScenarioSpec(
        family="tatp",
        corruption="set-clause",
        position="late",
        n_tuples=25,
        n_queries=8,
        seed=7,
    )


def test_bigm_tatp_solves_without_the_fallback_retry():
    """PR 10 root-cause pin: the Status-4 retry no longer fires on TATP.

    The failure above was never a HiGHS bug to work around: ~2e5 big-M
    coefficients amplified sub-tolerance primal drift past HiGHS's absolute
    feasibility tolerance.  With presolve's coefficient tightening + row
    equilibration the model reaches HiGHS well-scaled, so the first solve
    succeeds and the retry (kept as a fallback) must not fire at all.
    """
    from repro.service.types import DiagnosisRequest
    from repro.workload import build_spec_scenario

    scenario = build_spec_scenario(_tatp_spec())
    engine = DiagnosisEngine(QFixConfig.basic(solver="highs", time_limit=60.0))
    response = engine.submit(
        DiagnosisRequest(
            initial=scenario.initial,
            log=scenario.corrupted_log,
            complaints=scenario.complaints,
            final=scenario.dirty,
            diagnoser="basic",
            request_id="tatp-bigm-pin",
        )
    )
    assert response.ok and response.feasible, response.error_message
    summary = response.summary
    assert summary.get("stats.highs_presolve_retry", 0) == 0, summary
    assert summary.get("stats.presolve_bigm_tightened", 0) > 0, summary


def test_bigm_fallback_retry_still_rescues_untightened_models():
    """The PR 4 retry stays wired as the fallback path.

    With the matrix presolve disabled the raw ~2e5 coefficients reach HiGHS
    unchanged; if its first solve reports the Status-4 error, the backend
    must still rescue the model by retrying without HiGHS presolve — and the
    repair must match the tightened path's distance either way.
    """
    from repro.service.types import DiagnosisRequest
    from repro.workload import build_spec_scenario

    scenario = build_spec_scenario(_tatp_spec())

    def run(use_presolve: bool):
        config = QFixConfig.basic(solver="highs", time_limit=60.0).with_overrides(
            use_presolve=use_presolve
        )
        return DiagnosisEngine(config).submit(
            DiagnosisRequest(
                initial=scenario.initial,
                log=scenario.corrupted_log,
                complaints=scenario.complaints,
                final=scenario.dirty,
                diagnoser="basic",
                request_id=f"tatp-bigm-presolve-{use_presolve}",
            )
        )

    tightened = run(True)
    raw = run(False)
    assert tightened.ok and tightened.feasible, tightened.error_message
    assert raw.ok and raw.feasible, raw.error_message
    assert raw.distance == pytest.approx(tightened.distance, abs=DISTANCE_TOLERANCE)
