"""Diagnoser protocol and registry: look up diagnosis algorithms by name.

The registry mirrors :mod:`repro.milp.solvers.registry` for solver backends:
algorithms register a factory under a short name and the engine instantiates
them per request.  Unlike the solver registry, duplicate registration is an
error unless ``replace=True`` is passed — a service wiring bug that silently
swapped the production diagnoser would otherwise be invisible.

Built-in diagnosers:

``basic``
    One MILP over the whole log (:class:`~repro.core.basic.BasicRepairer`).
``incremental``
    The windowed ``Inc_k`` search
    (:class:`~repro.core.incremental.IncrementalRepairer`).
``auto``
    Picks ``incremental`` when the config assumes a single corrupted query
    (``single_fault``) and ``basic`` otherwise — the historical behaviour of
    ``QFix.diagnose(method="auto")``.
``dectree``
    The decision-tree baseline of the paper's Appendix A, adapted to the
    common :class:`~repro.core.repair.RepairResult` shape.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Protocol, runtime_checkable

from repro.core.basic import BasicRepairer
from repro.core.complaints import ComplaintSet
from repro.core.config import QFixConfig
from repro.core.incremental import IncrementalRepairer
from repro.core.repair import RepairResult
from repro.db.database import Database
from repro.exceptions import RepairError, ReproError
from repro.milp.solution import SolveStatus
from repro.milp.solvers import Solver
from repro.queries.log import QueryLog


@runtime_checkable
class Diagnoser(Protocol):
    """A named diagnosis algorithm.

    Implementations are stateless per call: ``diagnose`` receives everything
    it needs and returns a :class:`RepairResult`.  Raising a
    :class:`~repro.exceptions.ReproError` is the sanctioned way to report an
    unprocessable case; the engine converts it into a failure response.
    """

    name: str

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        config: QFixConfig,
        solver: Solver,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        """Produce a log repair that resolves ``complaints``.

        ``warm_start`` is an optional solver assignment from a previous run
        over the same inputs; algorithms that cannot exploit it must accept
        and ignore it.
        """
        ...


class BasicDiagnoser:
    """Single-shot MILP over the whole log."""

    name = "basic"

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        config: QFixConfig,
        solver: Solver,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        repairer = BasicRepairer(config, solver)
        return repairer.repair(
            final.schema, initial, final, log, complaints, warm_start=warm_start
        )


class IncrementalDiagnoser:
    """Windowed ``Inc_k`` search, newest window first."""

    name = "incremental"

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        config: QFixConfig,
        solver: Solver,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        repairer = IncrementalRepairer(config, solver)
        return repairer.repair(
            final.schema, initial, final, log, complaints, warm_start=warm_start
        )


class AutoDiagnoser:
    """Pick ``incremental`` or ``basic`` from the config's fault assumption."""

    name = "auto"

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        config: QFixConfig,
        solver: Solver,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        delegate = IncrementalDiagnoser() if config.single_fault else BasicDiagnoser()
        return delegate.diagnose(
            initial,
            final,
            log,
            complaints,
            config=config,
            solver=solver,
            warm_start=warm_start,
        )


class DecTreeDiagnoser:
    """Adapter exposing the Appendix-A baseline through the common interface.

    DecTree is a heuristic — it learns a WHERE clause rather than proving one
    — so successful repairs are reported with :attr:`SolveStatus.FEASIBLE`
    (never ``OPTIMAL``) and a zero distance: the learned clause can differ
    structurally from the original query, so the parameter-space distance the
    MILP minimizes is undefined for it.
    """

    name = "dectree"

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        config: QFixConfig,
        solver: Solver,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        # DecTree learns a WHERE clause; an MILP assignment cannot seed it,
        # so ``warm_start`` is accepted and ignored.
        # Imported lazily so the service layer does not pull numpy-heavy
        # baseline code unless the baseline is actually requested.
        from repro.baselines.dectree_repair import DecTreeRepairer

        start = time.perf_counter()
        try:
            outcome = DecTreeRepairer().repair(
                final.schema, initial, final, log, complaints
            )
        except RepairError as error:
            elapsed = time.perf_counter() - start
            return RepairResult(
                original_log=log,
                repaired_log=log,
                feasible=False,
                status=SolveStatus.ERROR,
                total_seconds=elapsed,
                message=str(error),
            )
        return RepairResult(
            original_log=log,
            repaired_log=outcome.repaired_log,
            feasible=outcome.feasible,
            status=SolveStatus.FEASIBLE if outcome.feasible else SolveStatus.INFEASIBLE,
            changed_query_indices=(outcome.repaired_index,),
            parameter_values=dict(outcome.set_values),
            total_seconds=outcome.total_seconds,
            message=outcome.message,
        )


_FACTORIES: Dict[str, Callable[[], Diagnoser]] = {}


def register_diagnoser(
    name: str, factory: Callable[[], Diagnoser], *, replace: bool = False
) -> None:
    """Register a diagnoser factory under ``name``.

    Re-registering an existing name raises :class:`ReproError` unless
    ``replace=True`` is passed explicitly.
    """
    if name in _FACTORIES and not replace:
        raise ReproError(
            f"diagnoser '{name}' is already registered; pass replace=True to override"
        )
    _FACTORIES[name] = factory


def available_diagnosers() -> tuple[str, ...]:
    """Names of the registered diagnosers, sorted."""
    return tuple(sorted(_FACTORIES))


def get_diagnoser(name: str) -> Diagnoser:
    """Instantiate a diagnoser by name.

    Raises :class:`ReproError` for unknown names, listing what is available.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown diagnoser '{name}'; available: {', '.join(available_diagnosers())}"
        ) from None
    return factory()


register_diagnoser(BasicDiagnoser.name, BasicDiagnoser)
register_diagnoser(IncrementalDiagnoser.name, IncrementalDiagnoser)
register_diagnoser(AutoDiagnoser.name, AutoDiagnoser)
register_diagnoser(DecTreeDiagnoser.name, DecTreeDiagnoser)
