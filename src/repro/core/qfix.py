"""The QFix facade: one object that wires the whole pipeline together.

Typical use::

    from repro import QFix, QFixConfig
    qfix = QFix(QFixConfig.fully_optimized())
    result = qfix.diagnose(initial, final, log, complaints)
    print(result.repaired_log.render_sql())
"""

from __future__ import annotations

from typing import Literal

from repro.core.basic import BasicRepairer
from repro.core.complaints import ComplaintSet
from repro.core.config import QFixConfig
from repro.core.incremental import IncrementalRepairer
from repro.core.metrics import RepairAccuracy, evaluate_repair
from repro.core.repair import RepairResult
from repro.db.database import Database
from repro.exceptions import ReproError
from repro.milp.solvers import Solver, get_solver
from repro.queries.log import QueryLog

Method = Literal["auto", "basic", "incremental"]


class QFix:
    """High-level entry point for diagnosing data errors through query histories."""

    def __init__(self, config: QFixConfig | None = None, solver: Solver | None = None) -> None:
        self.config = config if config is not None else QFixConfig.fully_optimized()
        self.solver = solver if solver is not None else get_solver(
            self.config.solver,
            time_limit=self.config.time_limit,
            mip_gap=self.config.mip_gap,
        )

    # -- diagnosis ---------------------------------------------------------------------

    def diagnose(
        self,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        method: Method = "auto",
    ) -> RepairResult:
        """Produce a log repair that resolves ``complaints``.

        ``method`` selects the algorithm: ``"basic"`` solves one MILP over the
        whole log, ``"incremental"`` runs the windowed ``Inc_k`` search, and
        ``"auto"`` (the default) picks the incremental algorithm when the
        configuration assumes a single corrupted query and basic otherwise.
        """
        if complaints.is_empty():
            raise ReproError("the complaint set is empty; nothing to diagnose")
        if method == "auto":
            method = "incremental" if self.config.single_fault else "basic"
        if method == "incremental":
            repairer = IncrementalRepairer(self.config, self.solver)
        elif method == "basic":
            repairer = BasicRepairer(self.config, self.solver)
        else:
            raise ReproError(f"unknown diagnosis method '{method}'")
        return repairer.repair(final.schema, initial, final, log, complaints)

    # -- evaluation --------------------------------------------------------------------

    def evaluate(
        self,
        initial: Database,
        dirty: Database,
        truth: Database,
        result: RepairResult,
    ) -> RepairAccuracy:
        """Score a repair against the known true final state."""
        return evaluate_repair(initial, dirty, truth, result.repaired_log)
