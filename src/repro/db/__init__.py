"""In-memory relational substrate used by the QFix reproduction.

The paper's formal model (Section 3) is a single relation with numeric
attributes, an initial state ``D0`` and a final state ``Dn`` obtained by
replaying a log of update queries.  This package provides exactly that
substrate:

* :class:`~repro.db.schema.AttributeSpec` and :class:`~repro.db.schema.Schema`
  describe the relation.
* :class:`~repro.db.table.Row` and :class:`~repro.db.table.Table` store tuples
  with stable row identifiers so that tuples can be tracked across states.
* :class:`~repro.db.database.Database` wraps a table and supports cheap
  snapshots (used to materialize the intermediate states ``D1 ... Dn-1``).
* :mod:`~repro.db.diff` compares two database states tuple-by-tuple, which is
  how true complaint sets are constructed in the experiments.
"""

from repro.db.schema import AttributeSpec, Schema
from repro.db.table import Row, Table
from repro.db.database import Database
from repro.db.diff import RowDiff, diff_states

__all__ = [
    "AttributeSpec",
    "Schema",
    "Row",
    "Table",
    "Database",
    "RowDiff",
    "diff_states",
]
