"""Harness runner, run_matrix, oracles, and report round-trips."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.harness import (
    CellSpec,
    HarnessRunner,
    available_grids,
    expand_cells,
    get_grid,
    run_grid,
)
from repro.harness.oracle import check_agreement, check_cell, check_convergence
from repro.harness.report import CellResult, HarnessReport, OracleViolation
from repro.service.engine import DiagnosisEngine
from repro.service.types import DiagnosisRequest, DiagnosisResponse
from repro.workload import ScenarioSpec, build_spec_scenario


@pytest.fixture(scope="module")
def micro_report():
    """One micro-grid sweep shared by the assertions below."""
    cells = get_grid("micro", seed=1)
    return run_grid(cells, grid_name="micro", seed=1), cells


class TestGrids:
    def test_builtin_grids_registered(self):
        for name in ("micro", "smoke", "full"):
            assert name in available_grids()

    def test_unknown_grid_raises(self):
        with pytest.raises(ReproError, match="unknown grid"):
            get_grid("nope")

    def test_smoke_grid_is_at_least_24_cells_and_unique(self):
        cells = get_grid("smoke", seed=1)
        assert len(cells) >= 24
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)

    def test_cell_config_carries_all_axes(self):
        cell = CellSpec(
            scenario=ScenarioSpec(seed=3),
            diagnoser="incremental",
            solver="branch-and-bound",
            use_presolve=False,
            time_limit=7.0,
        )
        config = cell.config()
        assert config.diagnoser == "incremental"
        assert config.solver == "branch-and-bound"
        assert config.use_presolve is False
        assert config.time_limit == 7.0
        assert "nopresolve" in cell.cell_id

    def test_warm_cell_twin_shares_identity(self):
        warm = expand_cells([ScenarioSpec()], warm=(True,))[0]
        assert warm.warm and not warm.cold_twin().warm
        assert warm.cold_twin().config() == warm.config()


class TestRunMatrix:
    def test_keys_map_to_responses(self, small_scenario):
        engine = DiagnosisEngine()
        request = DiagnosisRequest(
            initial=small_scenario.initial,
            log=small_scenario.corrupted_log,
            complaints=small_scenario.complaints,
            final=small_scenario.dirty,
        )
        responses = engine.run_matrix({"a": request, "b": request})
        assert set(responses) == {"a", "b"}
        assert responses["a"].request_id == "a"
        assert responses["b"].request_id == "b"
        assert responses["a"].ok and responses["a"].feasible

    def test_duplicate_cell_ids_rejected(self, small_scenario):
        engine = DiagnosisEngine()
        request = DiagnosisRequest(
            initial=small_scenario.initial,
            log=small_scenario.corrupted_log,
            complaints=small_scenario.complaints,
        )
        with pytest.raises(ReproError, match="duplicate matrix cell id"):
            engine.run_matrix([("x", request), ("x", request)])

    def test_empty_matrix(self):
        assert DiagnosisEngine().run_matrix([]) == {}


class TestMicroSweep:
    def test_every_cell_executes_without_violations(self, micro_report):
        report, cells = micro_report
        assert len(report.cells) == len(cells)
        assert not report.violations
        assert all(cell.ok for cell in report.cells)
        assert all(not cell.skipped for cell in report.cells)

    def test_backends_agree_cell_by_cell(self, micro_report):
        report, _ = micro_report
        by_group: dict[tuple[str, str], set[float]] = {}
        for cell in report.cells:
            by_group.setdefault((cell.scenario_label, cell.diagnoser), set()).add(
                round(cell.distance, 3)
            )
        for group, distances in by_group.items():
            assert len(distances) == 1, (group, distances)

    def test_accuracy_present_and_consistent(self, micro_report):
        report, _ = micro_report
        for cell in report.cells:
            assert cell.accuracy is not None
            assert cell.accuracy.consistency_errors() == []
            assert cell.full_complaints == cell.accuracy.true_errors

    def test_report_round_trips_through_json(self, micro_report):
        report, _ = micro_report
        clone = HarnessReport.from_json(report.to_json())
        assert clone.stable_dict() == report.stable_dict()
        assert clone.summary()["cells"] == report.summary()["cells"]
        assert clone.fingerprint_digest() == report.fingerprint_digest()

    def test_budget_skips_are_reported_not_violated(self):
        cells = get_grid("micro", seed=1)
        report = run_grid(
            cells, grid_name="micro", seed=1, budget_seconds=1e-9
        )
        assert len(report.cells) == len(cells)
        skipped = [cell for cell in report.cells if cell.skipped]
        assert skipped, "an expired budget must skip at least the later scenarios"
        assert not report.violations
        # Fingerprints must be budget-proof: every scenario in the grid is
        # fingerprinted even when its cells were all skipped, so same-seed
        # runs compare byte-identical wherever their budgets cut.
        expected_labels = {cell.scenario.label() for cell in cells}
        assert set(report.scenario_fingerprints) == expected_labels
        full = run_grid(cells, grid_name="micro", seed=1)
        assert report.fingerprint_digest() == full.fingerprint_digest()


class TestOracles:
    def _row(self, cell, **overrides):
        defaults = dict(
            cell_id=cell.cell_id,
            scenario_label=cell.scenario.label(),
            diagnoser=cell.diagnoser,
            solver=cell.solver,
            ok=True,
            feasible=True,
            status="optimal",
            distance=10.0,
        )
        defaults.update(overrides)
        return CellResult(**defaults)

    def test_agreement_flags_distance_divergence(self):
        scenario = ScenarioSpec(seed=1)
        a = CellSpec(scenario=scenario, diagnoser="incremental", solver="highs")
        b = CellSpec(
            scenario=scenario, diagnoser="incremental", solver="branch-and-bound"
        )
        rows = [(a, self._row(a)), (b, self._row(b, distance=12.0))]
        violations = check_agreement(rows)
        assert len(violations) == 1
        assert violations[0].invariant == "agreement"

    def test_agreement_ignores_time_limited_cells(self):
        scenario = ScenarioSpec(seed=1)
        a = CellSpec(scenario=scenario, diagnoser="incremental", solver="highs")
        b = CellSpec(
            scenario=scenario, diagnoser="incremental", solver="branch-and-bound"
        )
        rows = [
            (a, self._row(a)),
            (b, self._row(b, feasible=False, status="time_limit", distance=0.0)),
        ]
        assert check_agreement(rows) == []

    def test_agreement_treats_suboptimal_incumbents_as_upper_bounds(self):
        """A 'feasible' (not proven-optimal) incumbent never enters the
        distance comparison, but still participates in feasibility."""
        scenario = ScenarioSpec(seed=1)
        a = CellSpec(scenario=scenario, diagnoser="incremental", solver="highs")
        b = CellSpec(
            scenario=scenario, diagnoser="incremental", solver="branch-and-bound"
        )
        rows = [
            (a, self._row(a, status="optimal", distance=10.0)),
            (b, self._row(b, status="feasible", distance=42.0)),
        ]
        assert check_agreement(rows) == []
        rows_disagreeing = [
            (a, self._row(a, status="optimal", distance=10.0)),
            (b, self._row(b, status="feasible", feasible=False, distance=0.0)),
        ]
        violations = check_agreement(rows_disagreeing)
        assert [v.invariant for v in violations] == ["agreement"]

    def test_convergence_flags_incremental_miss_on_single_fault(self):
        spec = ScenarioSpec(n_tuples=10, n_queries=4, seed=1)
        scenario = build_spec_scenario(spec)
        assert len(scenario.corrupted_indices) == 1
        basic = CellSpec(scenario=spec, diagnoser="basic", solver="highs")
        incremental = CellSpec(scenario=spec, diagnoser="incremental", solver="highs")
        rows = [
            (basic, self._row(basic)),
            (incremental, self._row(incremental, feasible=False, status="infeasible")),
        ]
        violations = check_convergence(rows, {spec.label(): scenario})
        assert [v.invariant for v in violations] == ["convergence"]

    def test_resolution_violation_when_repair_does_not_resolve(self):
        spec = ScenarioSpec(n_tuples=10, n_queries=4, seed=1)
        scenario = build_spec_scenario(spec)
        cell = CellSpec(scenario=spec, diagnoser="incremental", solver="highs")
        # Claim feasibility but hand back the *corrupted* log as the repair.
        from repro.core.repair import RepairResult
        from repro.milp.solution import SolveStatus

        fake = RepairResult(
            original_log=scenario.corrupted_log,
            repaired_log=scenario.corrupted_log,
            feasible=True,
            status=SolveStatus.OPTIMAL,
        )
        response = DiagnosisResponse.from_result("cell", "incremental", fake)
        row = self._row(cell)
        row.accuracy = None
        violations = check_cell(cell, scenario, response, row)
        assert any(v.invariant == "resolution" for v in violations)

    def test_exact_crash_is_a_violation_and_dectree_is_exempt(self):
        spec = ScenarioSpec(seed=1)
        scenario = build_spec_scenario(spec)
        exact = CellSpec(scenario=spec, diagnoser="incremental", solver="highs")
        heuristic = CellSpec(scenario=spec, diagnoser="dectree", solver="highs")
        crash = DiagnosisResponse.from_error("cell", "incremental", RuntimeError("boom"))
        assert any(
            v.invariant == "no-crash"
            for v in check_cell(exact, scenario, crash, self._row(exact, ok=False))
        )
        assert (
            check_cell(heuristic, scenario, crash, self._row(heuristic, ok=False)) == []
        )

    def test_violation_round_trip(self):
        violation = OracleViolation("agreement", "cell-1", "boom")
        assert OracleViolation.from_dict(violation.to_dict()) == violation


class TestRunnerEngineSharing:
    def test_runner_uses_provided_engine_and_warms_it(self):
        engine = DiagnosisEngine()
        spec = ScenarioSpec(n_tuples=10, n_queries=4, seed=2)
        cells = expand_cells([spec], warm=(False, True))
        report = HarnessRunner(engine).run(cells, grid_name="warm", seed=2)
        assert not report.violations
        info = engine.warm_cache_info()
        assert info["hits"] >= 1, info
