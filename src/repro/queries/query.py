"""UPDATE / INSERT / DELETE query objects.

A query is an immutable description of one logged DML statement.  Queries own
their repairable parameters (:class:`~repro.queries.expressions.Param`);
``params()`` exposes them in a deterministic order and ``with_params()``
produces a structurally identical query with new constant values — the shape
of a *log repair* in the paper (repairs never change query structure, only
constants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import QueryModelError
from repro.queries.expressions import (
    Expr,
    collect_params,
    rebuild_expression,
)
from repro.queries.predicates import Predicate, TruePredicate


@dataclass(frozen=True)
class Query:
    """Base class for logged DML statements.

    Attributes
    ----------
    table:
        Name of the relation the query targets.
    label:
        Optional human-readable label (e.g. ``"q1"``) used in rendered SQL
        comments and experiment reports.
    """

    table: str
    label: str = field(default="", compare=False)

    # -- parameter protocol ----------------------------------------------------

    def params(self) -> dict[str, float]:
        """Return ``{parameter name: current value}`` in deterministic order."""
        raise NotImplementedError

    def with_params(self, mapping: Mapping[str, float]) -> "Query":
        """Return a copy of the query with parameter values replaced."""
        raise NotImplementedError

    def param_count(self) -> int:
        """Number of repairable parameters (``|q.param|`` in the paper)."""
        return len(self.params())

    # -- slicing metadata (Definitions 6 and 7) --------------------------------

    def direct_impact(self) -> frozenset[str]:
        """Attributes written by the query — ``I(q)`` in the paper."""
        raise NotImplementedError

    def dependency(self) -> frozenset[str]:
        """Attributes read by the condition function — ``P(q)`` in the paper."""
        raise NotImplementedError

    # -- rendering --------------------------------------------------------------

    def render_sql(self) -> str:
        """Render the query as SQL text."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render_sql()


@dataclass(frozen=True)
class UpdateQuery(Query):
    """``UPDATE table SET a = expr, ... WHERE predicate``."""

    set_clause: tuple[tuple[str, Expr], ...] = ()
    where: Predicate = field(default_factory=TruePredicate)

    def __init__(
        self,
        table: str,
        set_clause: Mapping[str, Expr] | tuple[tuple[str, Expr], ...],
        where: Predicate | None = None,
        label: str = "",
    ) -> None:
        if isinstance(set_clause, Mapping):
            items = tuple(set_clause.items())
        else:
            items = tuple(set_clause)
        if not items:
            raise QueryModelError("UPDATE requires a non-empty SET clause")
        seen = set()
        for attribute, _ in items:
            if attribute in seen:
                raise QueryModelError(f"attribute '{attribute}' set twice in UPDATE")
            seen.add(attribute)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "set_clause", items)
        object.__setattr__(self, "where", where if where is not None else TruePredicate())

    # -- parameters -------------------------------------------------------------

    def params(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for _, expr in self.set_clause:
            for name, value in collect_params(expr).items():
                _merge_param(merged, name, value)
        for name, value in self.where.params().items():
            _merge_param(merged, name, value)
        return merged

    def with_params(self, mapping: Mapping[str, float]) -> "UpdateQuery":
        new_set = tuple(
            (attribute, rebuild_expression(expr, mapping))
            for attribute, expr in self.set_clause
        )
        return UpdateQuery(self.table, new_set, self.where.with_params(mapping), self.label)

    # -- slicing metadata -------------------------------------------------------

    def direct_impact(self) -> frozenset[str]:
        return frozenset(attribute for attribute, _ in self.set_clause)

    def dependency(self) -> frozenset[str]:
        deps = set(self.where.attributes())
        # Attributes read on the right-hand side of SET expressions also feed
        # the written values, so they participate in the read-write chain.
        for _, expr in self.set_clause:
            deps |= expr.attributes()
        return frozenset(deps)

    def set_expressions(self) -> dict[str, Expr]:
        """SET clause as a dict (attribute -> expression)."""
        return dict(self.set_clause)

    # -- rendering --------------------------------------------------------------

    def render_sql(self) -> str:
        sets = ", ".join(
            f"{attribute} = {expr.render_sql()}" for attribute, expr in self.set_clause
        )
        where = self.where.render_sql()
        if isinstance(self.where, TruePredicate):
            return f"UPDATE {self.table} SET {sets}"
        return f"UPDATE {self.table} SET {sets} WHERE {where}"


@dataclass(frozen=True)
class InsertQuery(Query):
    """``INSERT INTO table (a, b, ...) VALUES (expr, expr, ...)``.

    Inserted values must be constant expressions (constants or parameters);
    they cannot reference attributes because there is no input tuple.
    """

    values: tuple[tuple[str, Expr], ...] = ()

    def __init__(
        self,
        table: str,
        values: Mapping[str, Expr] | tuple[tuple[str, Expr], ...],
        label: str = "",
    ) -> None:
        if isinstance(values, Mapping):
            items = tuple(values.items())
        else:
            items = tuple(values)
        if not items:
            raise QueryModelError("INSERT requires at least one value")
        for attribute, expr in items:
            if expr.attributes():
                raise QueryModelError(
                    f"INSERT value for '{attribute}' may not reference attributes"
                )
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "values", items)

    def params(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for _, expr in self.values:
            for name, value in collect_params(expr).items():
                _merge_param(merged, name, value)
        return merged

    def with_params(self, mapping: Mapping[str, float]) -> "InsertQuery":
        new_values = tuple(
            (attribute, rebuild_expression(expr, mapping))
            for attribute, expr in self.values
        )
        return InsertQuery(self.table, new_values, self.label)

    def direct_impact(self) -> frozenset[str]:
        return frozenset(attribute for attribute, _ in self.values)

    def dependency(self) -> frozenset[str]:
        return frozenset()

    def value_expressions(self) -> dict[str, Expr]:
        """Inserted values as a dict (attribute -> expression)."""
        return dict(self.values)

    def render_sql(self) -> str:
        columns = ", ".join(attribute for attribute, _ in self.values)
        values = ", ".join(expr.render_sql() for _, expr in self.values)
        return f"INSERT INTO {self.table} ({columns}) VALUES ({values})"


@dataclass(frozen=True)
class DeleteQuery(Query):
    """``DELETE FROM table WHERE predicate``."""

    where: Predicate = field(default_factory=TruePredicate)

    def __init__(self, table: str, where: Predicate | None = None, label: str = "") -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "where", where if where is not None else TruePredicate())

    def params(self) -> dict[str, float]:
        return dict(self.where.params())

    def with_params(self, mapping: Mapping[str, float]) -> "DeleteQuery":
        return DeleteQuery(self.table, self.where.with_params(mapping), self.label)

    def direct_impact(self) -> frozenset[str]:
        # Deleting a tuple affects every attribute of that tuple.
        return frozenset(self.where.attributes()) | frozenset({"*"})

    def dependency(self) -> frozenset[str]:
        return frozenset(self.where.attributes())

    def render_sql(self) -> str:
        if isinstance(self.where, TruePredicate):
            return f"DELETE FROM {self.table}"
        return f"DELETE FROM {self.table} WHERE {self.where.render_sql()}"


def _merge_param(merged: dict[str, float], name: str, value: float) -> None:
    if name in merged and merged[name] != value:
        raise QueryModelError(f"parameter '{name}' used with conflicting values")
    merged[name] = value
