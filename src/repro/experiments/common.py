"""Shared infrastructure for the experiment modules."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import QFixConfig
from repro.core.metrics import RepairAccuracy, evaluate_repair
from repro.core.qfix import QFix
from repro.core.repair import RepairResult
from repro.workload.scenario import Scenario, build_scenario
from repro.workload.synthetic import SyntheticConfig, SyntheticWorkloadGenerator


@dataclass
class ExperimentResult:
    """Rows of one reproduced figure/table plus free-form metadata."""

    name: str
    description: str
    rows: list[dict[str, object]] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append one measurement row."""
        self.rows.append(dict(values))

    def series(self, key: str) -> list[object]:
        """Extract one column across all rows."""
        return [row.get(key) for row in self.rows]

    def filter(self, **conditions: object) -> list[dict[str, object]]:
        """Rows matching all the given column values."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in conditions.items())
        ]

    def to_table(self, columns: Sequence[str] | None = None) -> str:
        """Render the rows as a fixed-width text table."""
        return format_table(self.rows, columns)


def format_table(rows: Iterable[dict[str, object]], columns: Sequence[str] | None = None) -> str:
    """Format dict-rows as a fixed-width table (used by every ``main()``)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(dict.fromkeys(key for row in rows for key in row))
    header = [str(column) for column in columns]
    table = [header]
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        table.append(rendered)
    widths = [max(len(line[index]) for line in table) for index in range(len(header))]
    lines = []
    for line_index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(line)))
        if line_index == 0:
            lines.append("  ".join("-" * widths[index] for index in range(len(header))))
    return "\n".join(lines)


def synthetic_scenario(
    *,
    n_tuples: int,
    n_queries: int,
    corruption_indices: Sequence[int],
    n_attributes: int = 10,
    seed: int = 0,
    complaint_fraction: float = 1.0,
    **config_overrides: object,
) -> Scenario:
    """Generate a synthetic workload and corrupt it the way the paper does."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_attributes=n_attributes,
        n_queries=n_queries,
        seed=seed,
    ).with_overrides(**config_overrides)
    generator = SyntheticWorkloadGenerator(config)
    workload = generator.generate()
    return build_scenario(
        workload,
        corruption_indices,
        rng=seed + 1000,
        complaint_fraction=complaint_fraction,
        corruptor=generator.corrupt_query,
    )


def nonvacuous_scenarios(count, build) -> "list[Scenario]":
    """The first ``count`` scenarios from ``build(candidate)`` that have
    observable errors.

    Some (size, corruption, seed) combinations corrupt a query in a way that
    never changes the final state — the complaint set diffs to nothing and
    there is nothing to diagnose.  Benchmarks and load tests that need *k*
    deterministic, diagnosable scenarios walk ``candidate = 1, 2, ...``
    through their builder and keep the non-vacuous ones.
    """
    scenarios: "list[Scenario]" = []
    candidate = 0
    while len(scenarios) < count:
        candidate += 1
        scenario = build(candidate)
        if len(scenario.complaints) > 0:
            scenarios.append(scenario)
    return scenarios


def run_qfix_on_scenario(
    scenario: Scenario,
    config: QFixConfig,
    *,
    method: str = "auto",
) -> tuple[RepairResult, RepairAccuracy, float]:
    """Run a diagnosis on a scenario and score it.

    Returns the repair result, the accuracy against the ground truth, and the
    wall-clock time of the diagnosis call.
    """
    qfix = QFix(config)
    start = time.perf_counter()
    result = qfix.diagnose(
        scenario.initial,
        scenario.dirty,
        scenario.corrupted_log,
        scenario.complaints,
        method=method,  # type: ignore[arg-type]
    )
    elapsed = time.perf_counter() - start
    accuracy = evaluate_repair(
        scenario.initial, scenario.dirty, scenario.truth, result.repaired_log
    )
    return result, accuracy, elapsed


#: Named QFix configurations used across the ablation experiments, matching the
#: series names in Figures 4 and 6.
ABLATION_CONFIGS: dict[str, QFixConfig] = {
    "basic": QFixConfig.basic(),
    "basic-tuple": QFixConfig.basic(tuple_slicing=True, refinement=True),
    "basic-query": QFixConfig.basic(query_slicing=True),
    "basic-attr": QFixConfig.basic(attribute_slicing=True),
    "basic-all": QFixConfig.basic(
        tuple_slicing=True, refinement=True, query_slicing=True, attribute_slicing=True
    ),
}


def incremental_config(batch: int, *, tuple_slicing: bool = True, **overrides: object) -> QFixConfig:
    """Configuration for ``inc_k`` variants used in Figure 6(b,e) and later."""
    config = QFixConfig.fully_optimized(
        incremental_batch=batch,
        tuple_slicing=tuple_slicing,
        refinement=tuple_slicing,
    )
    return config.with_overrides(**overrides) if overrides else config
