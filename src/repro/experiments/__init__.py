"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes ``run(scale="small", seed=...) -> ExperimentResult`` and a
``main()`` entry point that prints the figure's series as a table.  The
``scale`` argument selects parameter presets: ``"small"`` (default) finishes in
seconds-to-minutes on a laptop while preserving the qualitative shape of the
paper's plots; ``"paper"`` uses the parameters reported in Section 7 (and runs
correspondingly longer).

Index (see DESIGN.md for the full mapping):

==============  ====================================================================
Module           Reproduces
==============  ====================================================================
``figure4``      Figure 4 — log size vs. solve time, basic vs. single-query
``figure6``      Figure 6(a-f) — slicing ablation, incremental variants, query types
``figure7``      Figure 7(a,b) — many-attribute tables, database size (Na=100)
``figure8``      Figure 8(a-f) — size, clause types, false negatives, skew, dimensionality
``figure9``      Figure 9 — TPC-C / TATP benchmark latency
``figure10``     Figure 10(a,b) — DecTree baseline vs. QFix
``example2``     Example 2 / Figure 2 — the tax-bracket running example
==============  ====================================================================
"""

from repro.experiments.common import (
    ExperimentResult,
    format_table,
    run_qfix_on_scenario,
    synthetic_scenario,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "run_qfix_on_scenario",
    "synthetic_scenario",
]
