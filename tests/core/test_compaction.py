"""Log compaction: bookkeeping, soundness edge cases, and pipeline integration."""

import pytest

from repro.core.basic import BasicRepairer
from repro.core.complaints import Complaint, ComplaintSet
from repro.core.config import QFixConfig
from repro.core.incremental import IncrementalRepairer
from repro.core.slicing import compact_log
from repro.db.database import Database
from repro.db.schema import Schema
from repro.queries.executor import replay
from repro.queries.expressions import Attr, Const, Param
from repro.queries.log import QueryLog, changed_queries, log_distance
from repro.queries.predicates import Comparison
from repro.queries.query import DeleteQuery, InsertQuery, UpdateQuery
from repro.workload.spec import ScenarioSpec, build_spec_scenario


@pytest.fixture()
def schema():
    return Schema.build("t", ["a", "b", "c", "d"], upper=100)


def _update(write: str, read: str, label: str) -> UpdateQuery:
    return UpdateQuery(
        "t",
        {write: Param(f"{label}_set", 1.0)},
        Comparison(Attr(read), ">=", Const(0.0)),
        label=label,
    )


@pytest.fixture()
def chain_log():
    # q0 writes a (reads d); q1 writes b reading a; q2 writes c reading b;
    # q3 writes d reading d.  Full impacts: q0 -> {a,b,c}, q1 -> {b,c},
    # q2 -> {c}, q3 -> {d}.
    return QueryLog(
        [
            _update("a", "d", "q0"),
            _update("b", "a", "q1"),
            _update("c", "b", "q2"),
            _update("d", "d", "q3"),
        ]
    )


class TestCompactLog:
    def test_drops_queries_outside_encoded_attrs(self, schema, chain_log):
        compaction = compact_log(chain_log, frozenset({"c"}), schema)
        # q3's impact {d} misses {c}; the chain q0->q1->q2 survives whole.
        assert compaction.kept_indices == (0, 1, 2)
        assert compaction.dropped == 1
        assert compaction.original_size == 4
        assert [query.label for query in compaction.log] == ["q0", "q1", "q2"]

    def test_transitive_readers_of_kept_writes_are_kept(self, schema, chain_log):
        # Nothing that reaches "c" through any read chain may be dropped,
        # even queries that never write "c" themselves (q0, q1).
        compaction = compact_log(chain_log, frozenset({"c"}), schema)
        assert 0 in compaction.kept_indices
        assert 1 in compaction.kept_indices

    def test_index_bookkeeping_roundtrip(self, schema, chain_log):
        compaction = compact_log(chain_log, frozenset({"d"}), schema)
        assert compaction.kept_indices == (3,)
        assert compaction.index_map() == {3: 0}
        # remap drops original indices whose queries were compacted away.
        assert compaction.remap([0, 3]) == [0]
        assert compaction.to_original([0]) == (3,)

    def test_full_log_survives_unchanged_by_identity(self, schema, chain_log):
        compaction = compact_log(chain_log, frozenset({"a", "b", "c", "d"}), schema)
        assert compaction.dropped == 0
        assert compaction.log is chain_log

    def test_insert_always_kept(self, schema):
        log = QueryLog(
            [
                _update("a", "a", "q0"),
                InsertQuery(
                    "t",
                    {name: Const(1.0) for name in ["a", "b", "c", "d"]},
                    label="q1",
                ),
            ]
        )
        compaction = compact_log(log, frozenset({"b"}), schema)
        # q0's impact {a} misses {b}, but the INSERT defines tuple liveness
        # and survives every compaction.
        assert compaction.kept_indices == (1,)

    def test_delete_wildcard_always_kept(self, schema):
        log = QueryLog(
            [
                _update("a", "a", "q0"),
                DeleteQuery("t", Comparison(Attr("a"), "=", Const(50.0)), label="q1"),
            ]
        )
        compaction = compact_log(log, frozenset({"b"}), schema)
        # The DELETE's wildcard impact intersects every attribute set; q0 is
        # kept too because the DELETE's predicate reads "a".
        assert compaction.kept_indices == (0, 1)

    def test_compaction_can_remove_everything(self, schema, chain_log):
        compaction = compact_log(chain_log, frozenset(), schema)
        assert compaction.kept_indices == ()
        assert compaction.dropped == 4
        assert len(compaction.log) == 0


def _long_log_scenario(n_queries=48, n_corruptions=1, seed=3):
    spec = ScenarioSpec(
        family="long-log",
        n_tuples=16,
        n_queries=n_queries,
        corruption="set-clause",
        position="late",
        n_corruptions=n_corruptions,
        seed=seed,
    )
    return build_spec_scenario(spec)


def _config(decompose):
    return QFixConfig.basic(
        tuple_slicing=True, refinement=True, attribute_slicing=True
    ).with_overrides(decompose=decompose, time_limit=30.0)


class TestRepairerCompaction:
    @pytest.mark.parametrize("repairer_cls", [BasicRepairer, IncrementalRepairer])
    def test_decomposed_repair_matches_monolithic(self, repairer_cls):
        scenario = _long_log_scenario()
        results = {}
        for decompose in (False, True):
            repairer = repairer_cls(_config(decompose))
            results[decompose] = repairer.repair(
                scenario.schema,
                scenario.initial,
                scenario.dirty,
                scenario.corrupted_log,
                scenario.complaints,
            )
        mono, deco = results[False], results[True]
        assert mono.feasible and deco.feasible
        assert deco.distance == pytest.approx(mono.distance, abs=1e-6)
        assert changed_queries(
            scenario.corrupted_log, deco.repaired_log
        ) == changed_queries(scenario.corrupted_log, mono.repaired_log)
        assert deco.problem_stats.get("compacted_queries", 0.0) > 0

    def test_changed_indices_refer_to_the_original_log(self):
        scenario = _long_log_scenario()
        result = BasicRepairer(_config(True)).repair(
            scenario.schema,
            scenario.initial,
            scenario.dirty,
            scenario.corrupted_log,
            scenario.complaints,
        )
        assert result.feasible
        # The repaired log must be the full-length original with parameters
        # substituted — never the compacted log.
        assert len(result.repaired_log) == len(scenario.corrupted_log)
        for index in result.changed_query_indices:
            assert 0 <= index < len(scenario.corrupted_log)
        assert result.changed_query_indices == tuple(
            changed_queries(scenario.corrupted_log, result.repaired_log)
        )

    def test_complaints_spanning_two_components(self):
        # Two corruptions land in distinct tuple clusters (queries are dealt
        # round-robin), so the complaint set straddles two true components.
        scenario = _long_log_scenario(n_corruptions=2, seed=5)
        results = {}
        for decompose in (False, True):
            results[decompose] = BasicRepairer(_config(decompose)).repair(
                scenario.schema,
                scenario.initial,
                scenario.dirty,
                scenario.corrupted_log,
                scenario.complaints,
            )
        mono, deco = results[False], results[True]
        assert mono.feasible and deco.feasible
        assert deco.distance == pytest.approx(mono.distance, abs=1e-6)
        assert changed_queries(
            scenario.corrupted_log, deco.repaired_log
        ) == changed_queries(scenario.corrupted_log, mono.repaired_log)
        assert replay(scenario.initial, deco.repaired_log).same_state(
            replay(scenario.initial, mono.repaired_log)
        )

    def test_repair_replays_to_complaint_targets(self):
        scenario = _long_log_scenario()
        result = BasicRepairer(_config(True)).repair(
            scenario.schema,
            scenario.initial,
            scenario.dirty,
            scenario.corrupted_log,
            scenario.complaints,
        )
        assert result.feasible
        repaired_state = replay(scenario.initial, result.repaired_log)
        for complaint in scenario.complaints:
            row = repaired_state.get(complaint.rid)
            assert row is not None
            for name, value in complaint.target_values().items():
                assert row.values[name] == pytest.approx(value, abs=1e-4)


class TestCompactionRemovesEverything:
    def test_unreachable_complaint_is_handled_without_crashing(self, schema):
        # Every query writes "a"-family attributes; the complaint targets "d",
        # which no query can reach, so compaction leaves an empty model.  The
        # pipeline must answer (infeasibly) instead of crashing.
        initial = Database(
            schema, [{"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}]
        )
        log = QueryLog([_update("a", "a", "q0"), _update("b", "a", "q1")])
        dirty = replay(initial, log)
        rid = dirty.rows()[0].rid
        complaints = ComplaintSet(
            [Complaint(rid=rid, target={**dict(dirty.get(rid).values), "d": 99.0})]
        )
        result = BasicRepairer(_config(True)).repair(
            schema, initial, dirty, log, complaints
        )
        assert not result.feasible
        assert result.repaired_log == log

    def test_vacuous_repair_when_targets_match_dirty(self, schema):
        # Targets equal to the dirty values: the optimum is the zero repair.
        initial = Database(
            schema, [{"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}]
        )
        log = QueryLog([_update("a", "a", "q0")])
        dirty = replay(initial, log)
        rid = dirty.rows()[0].rid
        complaints = ComplaintSet(
            [Complaint(rid=rid, target=dict(dirty.get(rid).values))]
        )
        result = BasicRepairer(_config(True)).repair(
            schema, initial, dirty, log, complaints
        )
        assert result.feasible
        assert result.distance == pytest.approx(0.0, abs=1e-6)
        assert log_distance(log, result.repaired_log) == pytest.approx(0.0, abs=1e-6)
