"""SQL surface for the supported DML subset.

QFix works from a log of ``UPDATE`` / ``INSERT`` / ``DELETE`` statements.  This
package provides a tokenizer and a recursive-descent parser that turn SQL text
into the query objects of :mod:`repro.queries` (and back again via the query
objects' ``render_sql`` methods), so that query logs can be loaded from plain
``.sql`` scripts in the examples and benchmarks.

The grammar intentionally covers only the paper's problem scope: no
subqueries, joins, aggregation, or UDFs; WHERE clauses are conjunctions and
disjunctions of comparisons between linear expressions.
"""

from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.sql.parser import SQLParser, parse_query, parse_script

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "SQLParser",
    "parse_query",
    "parse_script",
]
