"""HiGHS backend via ``scipy.optimize.milp``.

This is the default solver.  The paper uses CPLEX; HiGHS is an open-source
branch-and-cut engine that solves the same MILPs to optimality, so the repair
quality is unaffected (only absolute solve times differ).

The model is exported in sparse CSR form and run through the shared matrix
presolve before HiGHS sees it: singleton rows become bounds, fixed variables
are folded out of every row, and trivially contradictory encodings (the
encoder's ``0 == 1`` rows) are rejected without invoking the solver at all.
"""

from __future__ import annotations

import time
from typing import Mapping

from scipy import optimize

from repro.milp.model import Model
from repro.milp.presolve import presolve
from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers.base import Solver, finalize_solution_values
from repro.obs import trace as obs


class HighsSolver(Solver):
    """Solve models with ``scipy.optimize.milp`` (HiGHS)."""

    name = "highs"

    def __init__(
        self,
        *,
        time_limit: float | None = None,
        mip_gap: float = 1e-6,
        use_presolve: bool = True,
    ) -> None:
        super().__init__(time_limit=time_limit, mip_gap=mip_gap)
        self.use_presolve = use_presolve

    def solve(
        self, model: Model, *, warm_start: Mapping[str, float] | None = None
    ) -> Solution:
        """Solve ``model``; ``warm_start`` is accepted but unused.

        ``scipy.optimize.milp`` exposes no incumbent-injection hook, so the
        hint cannot speed HiGHS up; it is accepted (and ignored) so callers
        can pass the same hint to any registered backend.
        """
        start = time.perf_counter()
        matrices = model.to_matrices()
        num_variables = len(matrices["c"])
        if num_variables == 0:
            # A model with no variables is optimal iff its (constant)
            # constraints are all satisfiable — e.g. the encoder's explicit
            # contradiction rows (0 == 1) must still report infeasibility.
            violated = model.check_assignment({})
            status = SolveStatus.INFEASIBLE if violated else SolveStatus.OPTIMAL
            return Solution(
                status=status,
                objective=0.0 if not violated else None,
                values={},
                solve_seconds=0.0,
                solver_name=self.name,
            )

        stats: dict[str, float] = {}
        if self.use_presolve:
            presolve_start = time.perf_counter()
            with obs.span("solver.presolve", solver=self.name) as presolve_span:
                reduction = presolve(matrices)
                presolve_span.set_attribute("infeasible", reduction.infeasible)
                presolve_span.set_attribute(
                    "bigm_tightened", int(reduction.stats.get("bigm_tightened", 0))
                )
            stats["presolve_seconds"] = time.perf_counter() - presolve_start
            stats.update({f"presolve_{key}": value for key, value in reduction.stats.items()})
            if reduction.infeasible:
                return Solution(
                    status=SolveStatus.INFEASIBLE,
                    solve_seconds=time.perf_counter() - start,
                    solver_name=self.name,
                    message=f"presolve: {reduction.reason}",
                    stats=stats,
                )
            matrices = reduction.matrices

        constraints = None
        matrix = matrices["A"].tocsr()
        if matrix.shape[0] > 0:
            constraints = optimize.LinearConstraint(
                matrix,
                matrices["lb_con"],
                matrices["ub_con"],
            )
        bounds = optimize.Bounds(matrices["lb_var"], matrices["ub_var"])
        options: dict[str, float | bool] = {"mip_rel_gap": self.mip_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)

        search_start = time.perf_counter()
        try:
            with obs.span("solver.search", solver=self.name) as search_span:
                result = optimize.milp(
                    c=matrices["c"],
                    constraints=constraints,
                    bounds=bounds,
                    integrality=matrices["integrality"],
                    options=options,
                )
                if int(getattr(result, "status", 0)) == 4:
                    # "HiGHS Status 4: Solve error" — raw big-M indicator rows
                    # (coefficients ~2e5) amplify sub-tolerance primal drift
                    # past HiGHS's absolute 1e-6 feasibility tolerance, so an
                    # *optimal* solve gets reported as a solve error.  The
                    # matrix presolve's big-M tightening + row equilibration
                    # removes that regime at the encoding level, so this retry
                    # is a pure fallback now: it fires only when presolve is
                    # disabled (or a caller hands HiGHS an untamed matrix).
                    search_span.add_event("highs_presolve_retry")
                    retry = optimize.milp(
                        c=matrices["c"],
                        constraints=constraints,
                        bounds=bounds,
                        integrality=matrices["integrality"],
                        options={**options, "presolve": False},
                    )
                    if int(getattr(retry, "status", 4)) != 4:
                        result = retry
                        stats["highs_presolve_retry"] = 1.0
                search_span.set_attribute(
                    "highs_status", int(getattr(result, "status", 4))
                )
        except Exception as error:  # pragma: no cover - defensive
            return Solution(
                status=SolveStatus.ERROR,
                solve_seconds=time.perf_counter() - start,
                solver_name=self.name,
                message=str(error),
                stats=stats,
            )
        stats["search_seconds"] = time.perf_counter() - search_start

        elapsed = time.perf_counter() - start
        status = _translate_status(result)
        values: dict[str, float] = {}
        objective = None
        message = str(result.message)
        if result.x is not None and status.has_solution:
            raw = {
                variable.name: float(result.x[variable.index])
                for variable in model.variables
            }
            values, warning = finalize_solution_values(model, raw)
            if warning:
                message = f"{message} [{warning}]" if message else warning
            objective = float(result.fun) if result.fun is not None else None
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_seconds=elapsed,
            solver_name=self.name,
            message=message,
            stats=stats,
        )


def _translate_status(result: "optimize.OptimizeResult") -> SolveStatus:
    """Map scipy's MILP status codes onto :class:`SolveStatus`."""
    # scipy.optimize.milp status codes:
    #   0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
    status = int(getattr(result, "status", 4))
    if status == 0:
        return SolveStatus.OPTIMAL
    if status == 1:
        return SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
    if status == 2:
        return SolveStatus.INFEASIBLE
    if status == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR
