"""Tests for repro.sql.tokenizer."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sql.tokenizer import TokenType, tokenize


class TestTokenizer:
    def test_basic_statement(self):
        tokens = tokenize("UPDATE t SET a = 5 WHERE b >= 3.5")
        kinds = [token.type for token in tokens]
        assert kinds[-1] is TokenType.EOF
        texts = [token.text for token in tokens[:-1]]
        assert texts == ["UPDATE", "t", "SET", "a", "=", "5", "WHERE", "b", ">=", "3.5"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("update T set A = 1")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[0].is_keyword("UPDATE")

    def test_operators_and_punctuation(self):
        tokens = tokenize("(a <> 1, b <= 2);")
        texts = [token.text for token in tokens[:-1]]
        assert texts == ["(", "a", "<>", "1", ",", "b", "<=", "2", ")", ";"]

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("-- a comment\nDELETE FROM t")
        assert tokens[0].is_keyword("DELETE")

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75")
        values = [token.text for token in tokens[:-1]]
        assert values == ["1", "2.5", ".75"]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("UPDATE t SET a = @5")

    def test_positions_recorded(self):
        tokens = tokenize("UPDATE t")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
