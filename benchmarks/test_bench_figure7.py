"""Figure 7 benchmarks: wide tables with and without query/attribute slicing."""

from __future__ import annotations

from repro.core.qfix import QFix
from repro.experiments.common import incremental_config


def _diagnose(scenario, config):
    result = QFix(config).diagnose(
        scenario.initial,
        scenario.dirty,
        scenario.corrupted_log,
        scenario.complaints,
        method="incremental",
    )
    assert result.feasible
    return result


def test_wide_table_tuple_slicing_only(benchmark, wide_table_scenario):
    """Figure 7(a): tuple slicing alone on a wide table."""
    config = incremental_config(1, query_slicing=False, attribute_slicing=False)
    benchmark(_diagnose, wide_table_scenario, config)


def test_wide_table_all_slicing(benchmark, wide_table_scenario):
    """Figure 7(a): tuple + query + attribute slicing on a wide table."""
    benchmark(_diagnose, wide_table_scenario, incremental_config(1))
