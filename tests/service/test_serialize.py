"""Round-trip tests for the service-boundary JSON codecs."""

import json

import pytest

from repro.core.complaints import Complaint, ComplaintSet
from repro.core.config import EncodingConfig, QFixConfig
from repro.db.database import Database
from repro.db.schema import AttributeSpec, Schema
from repro.queries.expressions import Attr, BinOp, Const, Param
from repro.queries.log import QueryLog
from repro.queries.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    TruePredicate,
)
from repro.queries.query import DeleteQuery, InsertQuery, UpdateQuery
from repro.service.serialize import (
    SerializationError,
    complaints_from_dict,
    complaints_to_dict,
    config_from_dict,
    config_to_dict,
    database_from_dict,
    database_to_dict,
    expr_from_dict,
    expr_to_dict,
    log_from_dict,
    log_to_dict,
    predicate_from_dict,
    predicate_to_dict,
    query_from_dict,
    query_to_dict,
    schema_from_dict,
    schema_to_dict,
)


def _json_round(value):
    """Force the payload through real JSON text, not just dicts."""
    return json.loads(json.dumps(value))


class TestExpressionCodec:
    def test_round_trip_all_node_kinds(self):
        expr = BinOp("+", BinOp("*", Attr("income"), Const(0.3)), Param("q1_p1", 5.0))
        assert expr_from_dict(_json_round(expr_to_dict(expr))) == expr

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            expr_from_dict({"kind": "lambda"})


class TestPredicateCodec:
    @pytest.mark.parametrize(
        "predicate",
        [
            TruePredicate(),
            FalsePredicate(),
            Comparison(Attr("a"), ">=", Param("p", 3.0)),
            And((Comparison(Attr("a"), ">", Const(1.0)), TruePredicate())),
            Or((Comparison(Attr("a"), "=", Const(1.0)), FalsePredicate())),
        ],
    )
    def test_round_trip(self, predicate):
        assert predicate_from_dict(_json_round(predicate_to_dict(predicate))) == predicate

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({"kind": "xor", "children": []})


class TestQueryCodec:
    def test_update_round_trip_preserves_params_and_label(self):
        query = UpdateQuery(
            "Taxes",
            {"owed": BinOp("*", Attr("income"), Const(0.3))},
            Comparison(Attr("income"), ">=", Param("q1_p1", 85_700.0)),
            label="q1",
        )
        restored = query_from_dict(_json_round(query_to_dict(query)))
        assert restored == query
        assert restored.label == "q1"
        assert restored.params() == {"q1_p1": 85_700.0}

    def test_insert_and_delete_round_trip(self):
        insert = InsertQuery("t", {"a": Param("q2_p1", 7.0), "b": Const(1.0)}, label="q2")
        delete = DeleteQuery("t", Comparison(Attr("a"), "<", Param("q3_p1", 2.0)), label="q3")
        assert query_from_dict(_json_round(query_to_dict(insert))) == insert
        assert query_from_dict(_json_round(query_to_dict(delete))) == delete

    def test_log_round_trip_preserves_order_and_sql(self):
        log = QueryLog(
            [
                UpdateQuery("t", {"a": Param("q1_p1", 1.0)}, label="q1"),
                DeleteQuery("t", Comparison(Attr("a"), ">", Const(5.0)), label="q2"),
            ]
        )
        restored = log_from_dict(_json_round(log_to_dict(log)))
        assert restored == log
        assert restored.render_sql() == log.render_sql()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            query_from_dict({"kind": "merge", "table": "t"})


class TestSchemaAndDatabaseCodec:
    def test_schema_round_trip(self):
        schema = Schema(
            "Taxes",
            (
                AttributeSpec("id", lower=0, upper=100, key=True, integral=True),
                AttributeSpec("income", lower=0, upper=300_000),
            ),
        )
        assert schema_from_dict(_json_round(schema_to_dict(schema))) == schema

    def test_database_round_trip_preserves_rids(self):
        schema = Schema.build("t", ["a", "b"], upper=10)
        database = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        database.delete(0)  # leave a rid gap, the hard case
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert restored.rids == database.rids
        assert restored.same_state(database)

    def test_database_round_trip_preserves_rid_counter(self):
        """Regression: deleting tail rows must not make replayed INSERTs reuse rids."""
        schema = Schema.build("t", ["a", "b"], upper=10)
        database = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": 5, "b": 6}])
        database.delete(2)  # tail delete: max(rid) is now 1 but the counter is 3
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert restored.table.next_rid == database.table.next_rid == 3
        assert restored.insert({"a": 7, "b": 8}).rid == database.insert({"a": 7, "b": 8}).rid


class TestComplaintCodec:
    def test_round_trip_all_kinds(self):
        complaints = ComplaintSet(
            [
                Complaint(0, {"a": 1.0, "b": 2.0}, True),  # value
                Complaint(1, None, True),  # removal
                Complaint(2, {"a": 5.0, "b": 6.0}, False),  # insertion
            ]
        )
        restored = complaints_from_dict(_json_round(complaints_to_dict(complaints)))
        assert restored.rids == complaints.rids
        for original, back in zip(complaints, restored):
            assert back == original
            assert back.kind is original.kind


class TestConfigCodec:
    def test_round_trip_non_default(self):
        config = QFixConfig.basic(
            solver="bnb",
            time_limit=None,
            diagnoser="basic",
            encoding=EncodingConfig(epsilon=0.25, delete_encoding="alive"),
        )
        assert config_from_dict(_json_round(config_to_dict(config))) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(SerializationError):
            config_from_dict({"solevr": "highs"})
        with pytest.raises(SerializationError):
            config_from_dict({"encoding": {"epsilonn": 1.0}})


class TestEdgeCases:
    """Boundary payloads the HTTP front end must survive."""

    def test_null_complaint_target_round_trips_through_json(self):
        """A removal complaint's ``None`` target becomes JSON ``null`` and back."""
        complaints = ComplaintSet([Complaint(7, None, True)])
        wire = json.dumps(complaints_to_dict(complaints))
        assert '"target": null' in wire
        (restored,) = list(complaints_from_dict(json.loads(wire)))
        assert restored.target is None
        assert restored == Complaint(7, None, True)

    def test_bool_and_int_column_values_normalize_to_float(self):
        """JSON callers send ``true``/``1`` where the engine stores floats."""
        schema = Schema.build("t", ["flag", "count"], upper=10)
        payload = {
            "rows": [
                {"rid": 0, "values": {"flag": True, "count": 3}},
                {"rid": 1, "values": {"flag": False, "count": 0}},
            ],
            "next_rid": 2,
        }
        restored = database_from_dict(schema, _json_round(payload))
        assert restored.get(0).values == {"flag": 1.0, "count": 3.0}
        assert restored.get(1).values == {"flag": 0.0, "count": 0.0}
        assert all(
            isinstance(value, float)
            for row in restored.rows()
            for value in row.values.values()
        )

    def test_bool_like_ints_in_schema_flags(self):
        """``key``/``integral`` arriving as 0/1 coerce to real booleans."""
        schema = schema_from_dict(
            {
                "name": "t",
                "attributes": [
                    {"name": "id", "lower": 0, "upper": 5, "key": 1, "integral": 1},
                    {"name": "v", "lower": 0, "upper": 5, "key": 0, "integral": 0},
                ],
            }
        )
        assert schema.attributes[0].key is True
        assert schema.attributes[0].integral is True
        assert schema.attributes[1].key is False
        assert schema.attributes[1].integral is False

    @pytest.mark.parametrize(
        "value",
        [0.1, 1 / 3, 1e-9, -0.0, 12345678.000000001, 2.5e300],
    )
    def test_float_values_round_trip_exactly(self, value):
        """IEEE doubles survive JSON text unchanged (repr round-trip)."""
        schema = Schema.build("t", ["a"], lower=-1e301, upper=1e301)
        database = Database(schema, [{"a": value}])
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert restored.get(0).values["a"] == value

    def test_float_params_round_trip_in_expressions(self):
        expr = BinOp("*", Attr("a"), Param("q1_p1", 0.30000000000000004))
        assert expr_from_dict(_json_round(expr_to_dict(expr))) == expr

    def test_empty_query_log_round_trips(self):
        log = QueryLog()
        wire = _json_round(log_to_dict(log))
        assert wire == []
        restored = log_from_dict(wire)
        assert len(restored) == 0
        assert restored == log

    def test_empty_complaint_set_round_trips(self):
        complaints = ComplaintSet()
        wire = _json_round(complaints_to_dict(complaints))
        assert wire == []
        restored = complaints_from_dict(wire)
        assert len(restored) == 0

    def test_empty_database_round_trips(self):
        schema = Schema.build("t", ["a"], upper=10)
        database = Database(schema)
        restored = database_from_dict(schema, _json_round(database_to_dict(database)))
        assert len(restored) == 0
        assert restored.table.next_rid == 0
