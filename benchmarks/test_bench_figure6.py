"""Figure 6 benchmarks: slicing ablation (6a/6d) and incremental variants (6b/6e)."""

from __future__ import annotations

import pytest

from repro.core.qfix import QFix
from repro.experiments.common import ABLATION_CONFIGS, incremental_config


def _diagnose(scenario, config, method):
    result = QFix(config).diagnose(
        scenario.initial, scenario.dirty, scenario.corrupted_log, scenario.complaints, method=method
    )
    assert result.feasible
    return result


@pytest.mark.parametrize("series", sorted(ABLATION_CONFIGS))
def test_basic_slicing_ablation(benchmark, multi_corruption_scenario, series):
    """Figure 6(a): basic vs basic-tuple / basic-query / basic-attr / basic-all."""
    benchmark(_diagnose, multi_corruption_scenario, ABLATION_CONFIGS[series], "basic")


@pytest.mark.parametrize("batch", [1, 2, 8])
def test_incremental_batch_sizes(benchmark, small_update_scenario, batch):
    """Figure 6(b): inc_k with tuple slicing at batch sizes 1, 2, 8."""
    benchmark(_diagnose, small_update_scenario, incremental_config(batch), "incremental")


def test_incremental_without_tuple_slicing(benchmark, small_update_scenario):
    """Figure 6(b): inc1 without tuple slicing (encodes every tuple)."""
    benchmark(
        _diagnose,
        small_update_scenario,
        incremental_config(1, tuple_slicing=False),
        "incremental",
    )


@pytest.mark.parametrize("query_type", ["insert", "update", "delete"])
def test_query_type_workloads(benchmark, query_type):
    """Figure 6(c): INSERT / UPDATE / DELETE-only workloads, oldest query corrupted."""
    from repro.experiments.common import synthetic_scenario

    scenario = synthetic_scenario(
        n_tuples=60,
        n_queries=10,
        corruption_indices=[0],
        seed=4,
        query_type=query_type,
    )
    if not scenario.has_errors:
        pytest.skip("corruption produced no observable errors for this seed")
    benchmark(_diagnose, scenario, incremental_config(1), "incremental")
