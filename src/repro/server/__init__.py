"""HTTP serving layer: transport, routing, session store, client, telemetry.

This package turns the service layer into a deployable system.  It is
dependency-free (``http.server`` + ``urllib``) and splits cleanly:

* :class:`DiagnosisApp` — socket-free routing/dispatch core (testable without
  a server).
* :class:`DiagnosisServer` / :func:`make_server` / :func:`serve` — the
  threaded stdlib transport.
* :class:`SessionStore` — lock-protected live :class:`RepairSession`s behind
  the ``/v1/sessions`` resource.
* :class:`DiagnosisClient` — typed urllib client mirroring every endpoint.
* :class:`Telemetry` — thread-safe request/error/latency counters rendered by
  ``GET /metrics``.

Boot a server and drive it::

    from repro.server import DiagnosisClient, make_server
    import threading

    server = make_server("127.0.0.1", 0)           # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = DiagnosisClient(f"http://127.0.0.1:{server.port}")
    print(client.health())

or from the command line::

    python -m repro.experiments.cli serve --host 0.0.0.0 --port 8080
"""

from repro.server.app import (
    DEFAULT_MAX_REQUEST_BYTES,
    DiagnosisApp,
    DiagnosisServer,
    Request,
    Response,
    make_server,
    serve,
)
from repro.server.client import DiagnosisClient, ServerError
from repro.server.handlers import HTTPError
from repro.server.store import NoPendingRepair, SessionNotFound, SessionStore
from repro.server.telemetry import Telemetry

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "DiagnosisApp",
    "DiagnosisServer",
    "DiagnosisClient",
    "HTTPError",
    "NoPendingRepair",
    "Request",
    "Response",
    "ServerError",
    "SessionNotFound",
    "SessionStore",
    "Telemetry",
    "make_server",
    "serve",
]
