"""Query corruption (Section 7.1, "Corrupting Queries").

The paper corrupts a query by replacing it with a randomly generated query of
the same type.  Because QFix repairs constants (not structure), the
reproduction keeps the query structure and re-randomizes its parameters, which
yields the same class of errors the MILP is asked to undo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.queries.log import QueryLog
from repro.queries.query import Query

#: Signature of a workload-specific corruption function: given a query and an
#: RNG, return the corrupted query and its new parameter values.
Corruptor = Callable[[Query, np.random.Generator], tuple[Query, dict[str, float]]]


@dataclass(frozen=True)
class CorruptionInfo:
    """Record of one corrupted query: which parameters changed and how."""

    query_index: int
    original_params: dict[str, float] = field(default_factory=dict)
    corrupted_params: dict[str, float] = field(default_factory=dict)

    @property
    def changed_params(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, value in self.corrupted_params.items()
            if abs(value - self.original_params[name]) > 1e-9
        )


def _as_rng(rng: "np.random.Generator | int | None") -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def corrupt_parameters(
    query: Query,
    *,
    rng: "np.random.Generator | int | None" = None,
    domain: tuple[float, float] = (0.0, 200.0),
    ensure_change: bool = True,
) -> tuple[Query, dict[str, float]]:
    """Re-randomize every parameter of ``query`` within ``domain``.

    Returns the corrupted query and the new parameter values.  With
    ``ensure_change`` the corruption is re-drawn until at least one parameter
    actually differs (a corruption that changes nothing would make the
    experiment vacuous).
    """
    params = query.params()
    if not params:
        return query, {}
    generator = _as_rng(rng)
    lower, upper = domain
    for _ in range(100):
        new_values = {
            name: float(generator.integers(int(lower), int(upper) + 1)) for name in params
        }
        if not ensure_change or any(
            abs(new_values[name] - params[name]) > 1e-9 for name in params
        ):
            return query.with_params(new_values), new_values
    raise ReproError("could not generate a corruption that changes the query")


def corrupt_single_parameter(
    query: Query,
    *,
    rng: "np.random.Generator | int | None" = None,
    domain: tuple[float, float] = (0.0, 200.0),
    param_name: str | None = None,
) -> tuple[Query, dict[str, float]]:
    """Corrupt exactly one parameter of ``query`` (the others keep their values)."""
    params = query.params()
    if not params:
        return query, {}
    generator = _as_rng(rng)
    name = param_name if param_name is not None else str(
        generator.choice(sorted(params))
    )
    if name not in params:
        raise ReproError(f"query has no parameter named '{name}'")
    lower, upper = domain
    original = params[name]
    for _ in range(100):
        candidate = float(generator.integers(int(lower), int(upper) + 1))
        if abs(candidate - original) > 1e-9:
            new_values = dict(params)
            new_values[name] = candidate
            return query.with_params(new_values), new_values
    raise ReproError(f"could not corrupt parameter '{name}'")


def corrupt_log(
    log: QueryLog,
    indices: Iterable[int],
    *,
    rng: "np.random.Generator | int | None" = None,
    domain: tuple[float, float] = (0.0, 200.0),
    single_parameter: bool = False,
    corruptor: "Corruptor | None" = None,
) -> tuple[QueryLog, list[CorruptionInfo]]:
    """Corrupt the queries at ``indices`` and return the corrupted log + records.

    ``corruptor`` may be supplied to corrupt a query the way its workload
    generator would regenerate it (preserving, e.g., the ``[?, ?+r]`` shape of
    range predicates); when omitted a generic re-randomization of parameter
    values within ``domain`` is used.
    """
    generator = _as_rng(rng)
    corrupted = log
    info: list[CorruptionInfo] = []
    for index in sorted(set(indices)):
        if not 0 <= index < len(log):
            raise ReproError(f"corruption index {index} out of range for log of size {len(log)}")
        query = log[index]
        assert isinstance(query, Query)
        original = query.params()
        if not original:
            continue
        if corruptor is not None:
            new_query, new_params = corruptor(query, generator)
        elif single_parameter:
            new_query, new_params = corrupt_single_parameter(
                query, rng=generator, domain=domain
            )
        else:
            new_query, new_params = corrupt_parameters(query, rng=generator, domain=domain)
        corrupted = corrupted.with_query(index, new_query)
        info.append(CorruptionInfo(index, original, new_params))
    return corrupted, info


def corruption_indices_from_spec(
    n_queries: int, spec: "Sequence[int] | int | None", *, every: int = 10
) -> tuple[int, ...]:
    """Normalize a corruption specification into explicit indices.

    ``spec`` may be an explicit sequence of indices, a single index, or
    ``None`` to use the paper's "every tenth query starting from the oldest"
    pattern.
    """
    if spec is None:
        return tuple(range(0, n_queries, every))
    if isinstance(spec, int):
        return (spec,)
    return tuple(spec)
