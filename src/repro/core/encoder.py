"""MILP encoding of a query log (Section 4 of the paper).

The encoder walks the query log once per encoded tuple, maintaining a
symbolic value per attribute.  Values stay concrete (plain floats) until they
are first influenced by an undetermined parameter; from then on they are
linear expressions over MILP variables.  This constant folding is what makes
the incremental algorithm cheap: queries outside the parameterized window
typically contribute no variables or constraints at all, mirroring the
behaviour the paper obtains by only parameterizing a suffix of the log.

Encoding rules (paper equations in parentheses):

* ``UPDATE`` — a binary ``x`` indicates whether the tuple satisfies the WHERE
  clause (Eq. 1); the new attribute value is ``old + x * (set_expr - old)``,
  with the product linearized through the big-M envelope (Eqs. 2-4).
* ``INSERT`` — inserted values are parameters; when the insert is
  parameterized they become decision variables directly (Eq. 5).
* ``DELETE`` — with the paper's ``sentinel`` encoding the tuple's attributes
  are pushed to a value ``M+`` outside the domain when the WHERE clause
  matches (Eq. 6); the ``alive`` encoding instead tracks liveness with an
  explicit binary variable (an extension evaluated in the ablation benches).
* final-state constraints tie each encoded tuple's symbolic values to the
  complaint targets (for complaint tuples) or to their dirty values (for
  non-complaint tuples / the refinement step's soft constraints).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.complaints import Complaint, ComplaintKind, ComplaintSet
from repro.core.config import QFixConfig
from repro.core.slicing import CompactedLog, direct_impact
from repro.core.symbolic import SymbolicValue, affine_to_symbolic
from repro.db.database import Database
from repro.db.schema import Schema
from repro.exceptions import QueryModelError
from repro.milp.expr import LinExpr, as_linexpr
from repro.milp.linearize import (
    add_absolute_value,
    add_binary_times_affine,
    add_comparison_indicator,
    add_conjunction,
    add_disjunction,
)
from repro.milp.model import Model
from repro.milp.variables import Variable
from repro.queries.log import QueryLog
from repro.queries.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.queries.query import DeleteQuery, InsertQuery, Query, UpdateQuery


@dataclass
class EncodedProblem:
    """The MILP produced by :class:`LogEncoder` plus bookkeeping for decoding."""

    model: Model
    #: Decision variable for every parameter of a parameterized query.
    param_variables: dict[str, Variable]
    #: Original (possibly corrupted) value of each parameterized parameter.
    param_originals: dict[str, float]
    #: Query indices whose parameters were turned into variables.
    parameterized_indices: tuple[int, ...]
    #: Tuples that were encoded.
    encoded_rids: tuple[int, ...]
    #: Attributes encoded symbolically.
    encoded_attributes: tuple[str, ...]
    #: Attributes whose final value is constrained.
    constrained_attributes: tuple[str, ...]
    #: Query indices that produced constraints.
    encoded_query_indices: tuple[int, ...]
    #: True when a constant-folded value already contradicts a target.
    trivially_infeasible: bool = False
    #: Additional statistics for reporting.
    stats: dict[str, float] = field(default_factory=dict)

    def solution_hint(
        self, previous: Mapping[str, float] | None
    ) -> dict[str, float] | None:
        """Restrict a previous solve's values to a usable warm start.

        Variable names are deterministic for a fixed (log, complaints,
        config) triple, so a cached solution from an identical encoding maps
        onto this model verbatim.  The hint is filtered per encoding: values
        for variables this window/component never created are dropped, and
        ``None`` is returned unless ``previous`` covers *every* variable of
        this model — a partial assignment cannot seed a branch-and-bound
        incumbent, and passing it along would only cost the solver a wasted
        feasibility check.

        A value that violates this model's variable bounds also rejects the
        hint outright.  This happens when the cached solution came from a
        different encoding of the same names — e.g. a variable that
        compaction or presolve has since pinned to a constant — and such a
        stale assignment must never reach the solver: branch-and-bound seeds
        its incumbent from constraint satisfaction alone, so a bound-violating
        hint could otherwise prune the true optimum.
        """
        if not previous:
            return None
        hint: dict[str, float] = {}
        for variable in self.model.variables:
            value = previous.get(variable.name)
            if value is None:
                return None
            value = float(value)
            if value < variable.lower - 1e-9 or value > variable.upper + 1e-9:
                return None
            hint[variable.name] = value
        return hint

    def restore_original_indices(self, compaction: "CompactedLog") -> None:
        """Map compacted-log query indices back to original log positions.

        After encoding a compacted log (see :func:`repro.core.slicing.compact_log`)
        the problem's index bookkeeping refers to positions in the compacted
        log; downstream reporting (changed queries, candidate sets) speaks in
        original log indices.  Parameter names are position-independent, so
        only the index tuples need translating.
        """
        self.parameterized_indices = compaction.to_original(self.parameterized_indices)
        self.encoded_query_indices = compaction.to_original(self.encoded_query_indices)
        self.stats["compacted_queries"] = float(compaction.dropped)


class LogEncoder:
    """Encode a query log, a pair of database states, and a complaint set."""

    def __init__(
        self,
        schema: Schema,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        config: QFixConfig,
        *,
        parameterized: Sequence[int],
        rids: Sequence[int] | None = None,
        encoded_attributes: Iterable[str] | None = None,
        candidate_indices: Sequence[int] | None = None,
        soft_rids: Mapping[int, float] | None = None,
        param_objective_weight: float = 1.0,
    ) -> None:
        self.schema = schema
        self.initial = initial
        self.final = final
        self.log = log
        self.complaints = complaints
        self.config = config
        self.parameterized = tuple(sorted(set(parameterized)))
        self.requested_rids = tuple(rids) if rids is not None else None
        self.requested_attributes = (
            tuple(encoded_attributes) if encoded_attributes is not None else None
        )
        self.candidate_indices = (
            tuple(candidate_indices) if candidate_indices is not None else None
        )
        self.soft_rids = dict(soft_rids or {})
        self.param_objective_weight = param_objective_weight

        self._model = Model("qfix")
        self._param_vars: dict[str, Variable] = {}
        self._param_bound_cache: dict[str, tuple[float, float]] = {}
        self._param_originals: dict[str, float] = {}
        self._name_counter = itertools.count()
        self._objective_terms: list[LinExpr] = []
        self._trivially_infeasible = False

        encoding = config.encoding
        lower, upper = schema.domain_bounds()
        width = max(upper - lower, 1.0)
        margin = encoding.domain_margin_fraction * width
        self._param_lower = lower - margin
        self._param_upper = upper + margin
        self._epsilon = encoding.epsilon
        self._sentinel_gap = encoding.sentinel_gap

    # -- public API ------------------------------------------------------------------

    def encode(self) -> EncodedProblem:
        """Build and return the MILP problem."""
        self._register_parameters()
        insert_rids = self._insert_rids()
        encoded_attrs = self._encoded_attributes()
        encoded_queries = self._encoded_queries(encoded_attrs)
        constrained_attrs = self._constrained_attributes(encoded_attrs, encoded_queries)
        rids = self._encoded_rids(insert_rids)

        for rid in rids:
            self._encode_tuple(
                rid,
                insert_rids,
                encoded_attrs,
                encoded_queries,
                constrained_attrs,
            )

        self._build_objective()
        return EncodedProblem(
            model=self._model,
            param_variables=dict(self._param_vars),
            param_originals=dict(self._param_originals),
            parameterized_indices=self.parameterized,
            encoded_rids=tuple(rids),
            encoded_attributes=tuple(sorted(encoded_attrs)),
            constrained_attributes=tuple(sorted(constrained_attrs)),
            encoded_query_indices=tuple(sorted(encoded_queries)),
            trivially_infeasible=self._trivially_infeasible,
            stats=self._model.summary(),
        )

    # -- problem shaping ---------------------------------------------------------------

    def _register_parameters(self) -> None:
        """Create a decision variable for every parameter of a parameterized query."""
        for index in self.parameterized:
            query = self.log[index]
            assert isinstance(query, Query)
            for name, value in query.params().items():
                if name in self._param_vars:
                    raise QueryModelError(f"parameter '{name}' registered twice")
                variable = self._model.add_continuous(
                    f"param::{name}", lower=self._param_lower, upper=self._param_upper
                )
                self._param_vars[name] = variable
                self._param_originals[name] = value

    def _insert_rids(self) -> dict[int, int]:
        """Map each INSERT query index to the rid its tuple receives on replay."""
        mapping: dict[int, int] = {}
        next_rid = self.initial.table.next_rid
        for index, query in enumerate(self.log):
            if isinstance(query, InsertQuery):
                mapping[index] = next_rid
                next_rid += 1
        return mapping

    def _encoded_attributes(self) -> frozenset[str]:
        if self.requested_attributes is not None:
            return frozenset(self.requested_attributes)
        return frozenset(self.schema.attribute_names)

    def _encoded_queries(self, encoded_attrs: frozenset[str]) -> frozenset[int]:
        """Query indices that must be encoded symbolically.

        Always includes parameterized queries and queries that write complaint
        attributes; when query slicing restricts candidates, non-candidate
        queries that only touch non-complaint attributes are skipped (their
        effect is reproduced concretely through the dirty shadow replay).
        """
        complaint_attrs = self.complaints.complaint_attributes(self.final)
        encoded: set[int] = set(self.parameterized)
        candidates = (
            set(self.candidate_indices)
            if self.candidate_indices is not None
            else set(range(len(self.log)))
        )
        for index, query in enumerate(self.log):
            writes = direct_impact(query, self.schema)
            if writes & complaint_attrs:
                encoded.add(index)
                continue
            if index in candidates and writes & encoded_attrs:
                encoded.add(index)
        return frozenset(encoded)

    def _constrained_attributes(
        self, encoded_attrs: frozenset[str], encoded_queries: frozenset[int]
    ) -> frozenset[str]:
        """Attributes whose final values can safely be pinned to their targets.

        An encoded attribute can only be constrained if every query that
        writes it is itself encoded; otherwise the symbolic trajectory misses
        some writes and pinning the final value would wrongly force
        infeasibility.
        """
        constrained = set()
        for attribute in encoded_attrs:
            writers = [
                index
                for index, query in enumerate(self.log)
                if attribute in direct_impact(query, self.schema)
            ]
            if all(index in encoded_queries for index in writers):
                constrained.add(attribute)
        return frozenset(constrained)

    def _encoded_rids(self, insert_rids: Mapping[int, int]) -> tuple[int, ...]:
        if self.requested_rids is not None:
            return tuple(self.requested_rids)
        rids = list(self.initial.rids)
        rids.extend(insert_rids.values())
        return tuple(sorted(set(rids)))

    # -- tuple encoding ------------------------------------------------------------------

    def _encode_tuple(
        self,
        rid: int,
        insert_rids: Mapping[int, int],
        encoded_attrs: frozenset[str],
        encoded_queries: frozenset[int],
        constrained_attrs: frozenset[str],
    ) -> None:
        born_at = -1
        if self.initial.get(rid) is None:
            born_candidates = [index for index, mapped in insert_rids.items() if mapped == rid]
            if not born_candidates:
                raise QueryModelError(
                    f"rid {rid} neither exists in the initial state nor is created by the log"
                )
            born_at = born_candidates[0]

        sym: dict[str, SymbolicValue] = {}
        shadow: dict[str, float] = {}
        shadow_alive = False
        alive = SymbolicValue.constant(0.0)

        if born_at == -1:
            row = self.initial.get(rid)
            assert row is not None
            shadow = dict(row.values)
            shadow_alive = True
            alive = SymbolicValue.constant(1.0)
            for attribute in encoded_attrs:
                sym[attribute] = SymbolicValue.constant(row.values[attribute])

        for index, query in enumerate(self.log):
            if index < born_at:
                continue
            if index == born_at:
                assert isinstance(query, InsertQuery)
                shadow, sym = self._encode_insert(index, rid, query, encoded_attrs)
                shadow_alive = True
                alive = SymbolicValue.constant(1.0)
                continue
            if index in encoded_queries and not isinstance(query, InsertQuery):
                alive = self._encode_step(index, rid, query, sym, shadow, alive, encoded_attrs)
            shadow_alive = self._shadow_step(query, shadow, shadow_alive)

        self._assign_final(rid, sym, alive, constrained_attrs)

    # -- per-query symbolic steps -----------------------------------------------------------

    def _encode_insert(
        self, index: int, rid: int, query: InsertQuery, encoded_attrs: frozenset[str]
    ) -> tuple[dict[str, float], dict[str, SymbolicValue]]:
        parameterized = index in self.parameterized
        shadow: dict[str, float] = {}
        sym: dict[str, SymbolicValue] = {}
        values = query.value_expressions()
        for attribute in self.schema.attribute_names:
            expr = values[attribute]
            shadow[attribute] = expr.evaluate({})
            if attribute not in encoded_attrs:
                continue
            affine = expr.affine()
            sym[attribute] = affine_to_symbolic(
                affine,
                {},
                self._param_vars if parameterized else {},
                self._param_bound_map(),
            )
        return shadow, sym

    def _encode_step(
        self,
        index: int,
        rid: int,
        query: Query,
        sym: dict[str, SymbolicValue],
        shadow: Mapping[str, float],
        alive: SymbolicValue,
        encoded_attrs: frozenset[str],
    ) -> SymbolicValue:
        """Encode the effect of one UPDATE or DELETE on one tuple."""
        if isinstance(query, UpdateQuery):
            self._encode_update(index, rid, query, sym, shadow, alive, encoded_attrs)
            return alive
        if isinstance(query, DeleteQuery):
            return self._encode_delete(index, rid, query, sym, shadow, alive, encoded_attrs)
        raise QueryModelError(f"unsupported query type {type(query).__name__}")

    def _encode_update(
        self,
        index: int,
        rid: int,
        query: UpdateQuery,
        sym: dict[str, SymbolicValue],
        shadow: Mapping[str, float],
        alive: SymbolicValue,
        encoded_attrs: frozenset[str],
    ) -> None:
        match = self._encode_predicate(index, rid, query.where, sym, shadow)
        match = self._combine_with_alive(index, rid, match, alive)
        if isinstance(match, float) and match == 0.0:
            return
        parameterized = index in self.parameterized
        values_view = self._values_view(sym, shadow)
        # Evaluate every SET expression against the pre-update state.
        targets: dict[str, SymbolicValue] = {}
        for attribute, expr in query.set_clause:
            if attribute not in encoded_attrs:
                continue
            affine = expr.affine()
            targets[attribute] = affine_to_symbolic(
                affine,
                values_view,
                self._param_vars if parameterized else {},
                self._param_bound_map(),
            )
        for attribute, target in targets.items():
            old = sym[attribute]
            if isinstance(match, float):
                sym[attribute] = target
                continue
            delta = target.subtract(old)
            if delta.is_constant and delta.as_float() == 0.0:
                continue
            product = add_binary_times_affine(
                self._model,
                match,
                delta.as_expr(),
                lower=delta.lower,
                upper=delta.upper,
                name=self._fresh(f"q{index}_r{rid}_{attribute}_delta"),
            )
            new_expr = as_linexpr(old.as_expr()) + product
            sym[attribute] = SymbolicValue(
                new_expr,
                min(old.lower, target.lower),
                max(old.upper, target.upper),
            )

    def _encode_delete(
        self,
        index: int,
        rid: int,
        query: DeleteQuery,
        sym: dict[str, SymbolicValue],
        shadow: Mapping[str, float],
        alive: SymbolicValue,
        encoded_attrs: frozenset[str],
    ) -> SymbolicValue:
        match = self._encode_predicate(index, rid, query.where, sym, shadow)
        match = self._combine_with_alive(index, rid, match, alive)
        if self.config.encoding.delete_encoding == "alive":
            return self._apply_alive_delete(index, rid, match, alive)
        # Sentinel encoding: matched tuples have every attribute pushed to M+.
        if isinstance(match, float) and match == 0.0:
            return alive
        for attribute in encoded_attrs:
            sentinel = self._sentinel_for(attribute)
            old = sym[attribute]
            if isinstance(match, float):
                sym[attribute] = SymbolicValue.constant(sentinel)
                continue
            delta_expr = sentinel - as_linexpr(old.as_expr())
            delta_lower = sentinel - old.upper
            delta_upper = sentinel - old.lower
            product = add_binary_times_affine(
                self._model,
                match,
                delta_expr,
                lower=delta_lower,
                upper=delta_upper,
                name=self._fresh(f"q{index}_r{rid}_{attribute}_del"),
            )
            new_expr = as_linexpr(old.as_expr()) + product
            sym[attribute] = SymbolicValue(
                new_expr, min(old.lower, sentinel), max(old.upper, sentinel)
            )
        if isinstance(match, float):
            return SymbolicValue.constant(0.0) if match == 1.0 else alive
        return alive

    def _apply_alive_delete(
        self, index: int, rid: int, match: "float | Variable", alive: SymbolicValue
    ) -> SymbolicValue:
        """Liveness-tracking DELETE encoding: ``alive' = alive AND NOT match``."""
        if isinstance(match, float):
            if match == 0.0:
                return alive
            return SymbolicValue.constant(0.0)
        new_alive = self._model.add_binary(self._fresh(f"q{index}_r{rid}_alive"))
        if alive.is_constant:
            self._model.add_equal(new_alive + match, alive.as_float(), self._fresh("alive_eq"))
        else:
            alive_expr = as_linexpr(alive.as_expr())
            self._model.add_le(new_alive, alive_expr, self._fresh("alive_le_old"))
            self._model.add_le(new_alive, 1.0 - match, self._fresh("alive_le_not"))
            self._model.add_ge(new_alive, alive_expr - match, self._fresh("alive_ge"))
        return SymbolicValue.from_variable(new_alive)

    def _combine_with_alive(
        self, index: int, rid: int, match: "float | Variable", alive: SymbolicValue
    ) -> "float | Variable":
        """AND the WHERE-clause indicator with the tuple's liveness."""
        if alive.is_constant:
            if alive.as_float() == 0.0:
                return 0.0
            return match
        if isinstance(match, float):
            if match == 0.0:
                return 0.0
            alive_expr = alive.as_expr()
            assert isinstance(alive_expr, LinExpr)
            variables = alive_expr.variables()
            if len(variables) == 1 and alive_expr.constant == 0.0:
                return variables[0]
        combined = self._model.add_binary(self._fresh(f"q{index}_r{rid}_alive_match"))
        children = []
        if isinstance(match, Variable):
            children.append(match)
        alive_expr = alive.as_expr()
        assert isinstance(alive_expr, LinExpr)
        children.extend(alive_expr.variables())
        add_conjunction(self._model, combined, children, name=self._fresh("alive_and"))
        return combined

    # -- predicates ----------------------------------------------------------------------------

    def _encode_predicate(
        self,
        index: int,
        rid: int,
        predicate: Predicate,
        sym: Mapping[str, SymbolicValue],
        shadow: Mapping[str, float],
    ) -> "float | Variable":
        """Return a constant truth value or a binary indicator for a predicate."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, Comparison):
            return self._encode_comparison(index, rid, predicate, sym, shadow)
        if isinstance(predicate, (And, Or)):
            is_and = isinstance(predicate, And)
            children: list[Variable] = []
            for child in predicate.children:
                encoded = self._encode_predicate(index, rid, child, sym, shadow)
                if isinstance(encoded, float):
                    if is_and and encoded == 0.0:
                        return 0.0
                    if not is_and and encoded == 1.0:
                        return 1.0
                    continue  # neutral element, drop it
                children.append(encoded)
            if not children:
                return 1.0 if is_and else 0.0
            if len(children) == 1:
                return children[0]
            combined = self._model.add_binary(
                self._fresh(f"q{index}_r{rid}_{'and' if is_and else 'or'}")
            )
            if is_and:
                add_conjunction(self._model, combined, children, name=self._fresh("conj"))
            else:
                add_disjunction(self._model, combined, children, name=self._fresh("disj"))
            return combined
        raise QueryModelError(f"unsupported predicate type {type(predicate).__name__}")

    def _encode_comparison(
        self,
        index: int,
        rid: int,
        comparison: Comparison,
        sym: Mapping[str, SymbolicValue],
        shadow: Mapping[str, float],
    ) -> "float | Variable":
        parameterized = index in self.parameterized
        values_view = self._values_view(sym, shadow)
        params = self._param_vars if parameterized else {}
        left = affine_to_symbolic(
            comparison.left.affine(), values_view, params, self._param_bound_map()
        )
        right = affine_to_symbolic(
            comparison.right.affine(), values_view, params, self._param_bound_map()
        )
        if left.is_constant and right.is_constant:
            return 1.0 if _evaluate_comparison(left.as_float(), comparison.op, right.as_float()) else 0.0
        binary = self._model.add_binary(self._fresh(f"q{index}_r{rid}_cmp"))
        big_m = max(
            abs(left.upper - right.lower), abs(right.upper - left.lower), 1.0
        ) + self._epsilon + 1.0
        add_comparison_indicator(
            self._model,
            binary,
            as_linexpr(left.as_expr()),
            comparison.op,
            as_linexpr(right.as_expr()),
            big_m=big_m,
            epsilon=self._epsilon,
            name=self._fresh(f"q{index}_r{rid}_ind"),
        )
        return binary

    # -- final state ------------------------------------------------------------------------------

    def _assign_final(
        self,
        rid: int,
        sym: Mapping[str, SymbolicValue],
        alive: SymbolicValue,
        constrained_attrs: frozenset[str],
    ) -> None:
        complaint = self.complaints.get(rid)
        target, should_exist = self._target_for(rid, complaint)
        if rid in self.soft_rids:
            self._assign_soft_final(rid, sym, alive, constrained_attrs, target, should_exist)
            return
        use_alive = self.config.encoding.delete_encoding == "alive"
        if use_alive:
            self._pin(alive, 1.0 if should_exist else 0.0, f"r{rid}_alive_final")
            if not should_exist:
                return
        for attribute in sorted(constrained_attrs):
            if attribute not in sym:
                continue
            if should_exist:
                value = target[attribute]
            else:
                value = self._sentinel_for(attribute)
            self._pin(sym[attribute], value, f"r{rid}_{attribute}_final")

    def _assign_soft_final(
        self,
        rid: int,
        sym: Mapping[str, SymbolicValue],
        alive: SymbolicValue,
        constrained_attrs: frozenset[str],
        target: Mapping[str, float],
        should_exist: bool,
    ) -> None:
        """Soft constraints for refinement: pay ``weight`` if the tuple deviates."""
        weight = self.soft_rids[rid]
        violation = self._model.add_binary(self._fresh(f"r{rid}_soft"))
        use_alive = self.config.encoding.delete_encoding == "alive"
        if use_alive and not alive.is_constant:
            alive_target = 1.0 if should_exist else 0.0
            diff = as_linexpr(alive.as_expr()) - alive_target
            self._model.add_le(diff, violation * 2.0, self._fresh("soft_alive_ub"))
            self._model.add_ge(diff, violation * -2.0, self._fresh("soft_alive_lb"))
        for attribute in sorted(constrained_attrs):
            if attribute not in sym:
                continue
            value = target[attribute] if should_exist else self._sentinel_for(attribute)
            symbolic = sym[attribute]
            if symbolic.is_constant:
                if abs(symbolic.as_float() - value) > 1e-6:
                    self._model.add_ge(violation, 1.0, self._fresh("soft_forced"))
                continue
            bound = max(abs(symbolic.upper - value), abs(symbolic.lower - value), 1.0)
            diff = as_linexpr(symbolic.as_expr()) - value
            self._model.add_le(diff, violation * bound, self._fresh("soft_ub"))
            self._model.add_ge(diff, violation * -bound, self._fresh("soft_lb"))
        self._objective_terms.append(as_linexpr(violation) * weight)

    def _target_for(
        self, rid: int, complaint: Complaint | None
    ) -> tuple[dict[str, float], bool]:
        """The final values the encoded tuple must reach and whether it should exist."""
        if complaint is not None:
            if complaint.kind is ComplaintKind.REMOVE:
                return {}, False
            return complaint.target_values(), True
        final_row = self.final.get(rid)
        if final_row is None:
            return {}, False
        return dict(final_row.values), True

    def _pin(self, symbolic: SymbolicValue, value: float, name: str) -> None:
        """Constrain a symbolic value to equal ``value`` (or record infeasibility)."""
        if symbolic.is_constant:
            if abs(symbolic.as_float() - value) > 1e-6:
                # The folded value already contradicts the target; emit an
                # obviously infeasible constraint so the solver reports it.
                self._trivially_infeasible = True
                self._model.add_equal(LinExpr(), 1.0, self._fresh(f"{name}_contradiction"))
            return
        self._model.add_equal(symbolic.as_expr(), value, self._fresh(name))

    # -- shadow (concrete dirty) replay --------------------------------------------------------------

    def _shadow_step(
        self, query: Query, shadow: dict[str, float], shadow_alive: bool
    ) -> bool:
        """Advance the concrete dirty-replay values of the tuple by one query."""
        if not shadow_alive or not shadow:
            return shadow_alive
        if isinstance(query, UpdateQuery):
            if query.where.evaluate(shadow):
                new_values = {
                    attribute: expr.evaluate(shadow) for attribute, expr in query.set_clause
                }
                shadow.update(new_values)
            return True
        if isinstance(query, DeleteQuery):
            if query.where.evaluate(shadow):
                for attribute in shadow:
                    shadow[attribute] = self._sentinel_for(attribute)
                return False
            return True
        return shadow_alive

    # -- helpers ------------------------------------------------------------------------------------

    def _values_view(
        self, sym: Mapping[str, SymbolicValue], shadow: Mapping[str, float]
    ) -> dict[str, SymbolicValue]:
        """Merge symbolic values (encoded attributes) with shadow constants."""
        view = {name: SymbolicValue.constant(value) for name, value in shadow.items()}
        view.update(sym)
        return view

    def _param_bound_map(self) -> dict[str, tuple[float, float]]:
        # Every parameter shares the schema-wide (lower, upper) pair, and
        # parameters are only ever added — so the map is rebuilt only when
        # the variable set grew.  Rebuilding it per comparison made encoding
        # quadratic in log length; this memo keeps it linear.
        cache = self._param_bound_cache
        if len(cache) != len(self._param_vars):
            bounds = (self._param_lower, self._param_upper)
            cache = {name: bounds for name in self._param_vars}
            self._param_bound_cache = cache
        return cache

    def _sentinel_for(self, attribute: str) -> float:
        spec = self.schema.spec(attribute)
        return spec.upper + self._sentinel_gap

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}#{next(self._name_counter)}"

    def _build_objective(self) -> None:
        terms: list[LinExpr] = []
        for name, variable in self._param_vars.items():
            original = self._param_originals[name]
            distance = add_absolute_value(
                self._model,
                variable - original,
                name=self._fresh(f"dist::{name}"),
                upper=self._param_upper - self._param_lower,
            )
            terms.append(as_linexpr(distance) * self.param_objective_weight)
        terms.extend(self._objective_terms)
        self._model.set_objective(LinExpr.sum(terms))


def _evaluate_comparison(lhs: float, op: str, rhs: float, tolerance: float = 1e-9) -> bool:
    if op == "<=":
        return lhs <= rhs + tolerance
    if op == ">=":
        return lhs >= rhs - tolerance
    if op == "<":
        return lhs < rhs - tolerance
    if op == ">":
        return lhs > rhs + tolerance
    if op == "=":
        return abs(lhs - rhs) <= tolerance
    return abs(lhs - rhs) > tolerance
