"""Error-path coverage for the diagnoser and solver registries."""

import pytest

from repro.core.complaints import ComplaintSet
from repro.core.qfix import QFix
from repro.exceptions import ReproError, SolverError
from repro.milp.solution import SolveStatus
from repro.milp.solvers import get_solver
from repro.service.registry import (
    AutoDiagnoser,
    BasicDiagnoser,
    Diagnoser,
    IncrementalDiagnoser,
    _FACTORIES,
    available_diagnosers,
    get_diagnoser,
    register_diagnoser,
)


class TestDiagnoserRegistry:
    def test_builtins_registered(self):
        assert {"auto", "basic", "incremental", "dectree"} <= set(available_diagnosers())
        assert isinstance(get_diagnoser("basic"), BasicDiagnoser)
        assert isinstance(get_diagnoser("incremental"), IncrementalDiagnoser)
        # Every built-in satisfies the (runtime-checkable) protocol.
        for name in ("auto", "basic", "incremental", "dectree"):
            assert isinstance(get_diagnoser(name), Diagnoser)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ReproError, match="unknown diagnoser 'milp2'"):
            get_diagnoser("milp2")
        with pytest.raises(ReproError, match="incremental"):
            get_diagnoser("milp2")

    def test_duplicate_registration_rejected(self):
        register_diagnoser("dup-test", BasicDiagnoser)
        try:
            with pytest.raises(ReproError, match="already registered"):
                register_diagnoser("dup-test", IncrementalDiagnoser)
            # The original registration is untouched by the failed attempt.
            assert isinstance(get_diagnoser("dup-test"), BasicDiagnoser)
            register_diagnoser("dup-test", IncrementalDiagnoser, replace=True)
            assert isinstance(get_diagnoser("dup-test"), IncrementalDiagnoser)
        finally:
            _FACTORIES.pop("dup-test", None)

    def test_auto_resolution_follows_single_fault(self, taxes_case):
        auto = AutoDiagnoser()
        from repro.core.config import QFixConfig

        single = QFixConfig.fully_optimized()
        multi = QFixConfig.basic()
        solver = get_solver("highs")
        result_single = auto.diagnose(
            taxes_case["initial"],
            taxes_case["dirty"],
            taxes_case["corrupted_log"],
            taxes_case["complaints"],
            config=single,
            solver=solver,
        )
        result_multi = auto.diagnose(
            taxes_case["initial"],
            taxes_case["dirty"],
            taxes_case["corrupted_log"],
            taxes_case["complaints"],
            config=multi,
            solver=solver,
        )
        # Incremental reports tried windows; the single-shot basic path does not.
        assert result_single.feasible and result_single.windows_tried >= 1
        assert result_multi.feasible

    def test_dectree_adapter_reports_unsupported_logs(self, taxes_case):
        from repro.core.config import QFixConfig

        # The taxes log ends in an UPDATE, but has 3 queries — DecTree only
        # repairs the last one, and the corruption sits at q1, so the adapter
        # must come back as a structured non-repair, not an exception.
        result = get_diagnoser("dectree").diagnose(
            taxes_case["initial"],
            taxes_case["dirty"],
            taxes_case["corrupted_log"],
            taxes_case["complaints"],
            config=QFixConfig.fully_optimized(),
            solver=get_solver("highs"),
        )
        assert result.status in (
            SolveStatus.FEASIBLE,
            SolveStatus.INFEASIBLE,
            SolveStatus.ERROR,
        )
        assert result.original_log == taxes_case["corrupted_log"]


class TestSolverRegistryErrorPaths:
    def test_unknown_solver_name(self):
        with pytest.raises(SolverError, match="unknown solver 'cplex'"):
            get_solver("cplex")

    def test_qfix_unknown_method(self, taxes_case):
        with pytest.raises(ReproError, match="unknown diagnoser"):
            QFix().diagnose(
                taxes_case["initial"],
                taxes_case["dirty"],
                taxes_case["corrupted_log"],
                taxes_case["complaints"],
                method="magic",  # type: ignore[arg-type]
            )

    def test_qfix_empty_complaints(self, taxes_case):
        with pytest.raises(ReproError, match="empty"):
            QFix().diagnose(
                taxes_case["initial"],
                taxes_case["dirty"],
                taxes_case["corrupted_log"],
                ComplaintSet(),
            )
