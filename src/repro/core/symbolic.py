"""Symbolic tuple values used while encoding the query log.

While the encoder walks the query log it maintains, for every encoded tuple
and attribute, a *symbolic value*: either a concrete float (when nothing
upstream depends on an undetermined parameter) or a linear expression over
MILP variables together with interval bounds.  Constant folding is what makes
the incremental algorithm cheap: queries outside the parameterized window
usually evaluate concretely and contribute no constraints at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ModelError
from repro.milp.expr import LinExpr, as_linexpr
from repro.milp.variables import Variable
from repro.queries.expressions import Affine


@dataclass
class SymbolicValue:
    """A value that is either a known constant or a bounded linear expression.

    ``expr`` is a float for constants, otherwise a :class:`LinExpr` (or a
    :class:`Variable`).  ``lower`` / ``upper`` are interval bounds that hold
    for every feasible assignment — they size the big-M constants.
    """

    expr: "float | LinExpr | Variable"
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if isinstance(self.expr, Variable):
            self.expr = as_linexpr(self.expr)
        if self.lower > self.upper + 1e-9:
            raise ModelError(
                f"symbolic value has inverted bounds [{self.lower}, {self.upper}]"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, value: float) -> "SymbolicValue":
        """A fully known value."""
        return cls(float(value), float(value), float(value))

    @classmethod
    def from_variable(cls, variable: Variable) -> "SymbolicValue":
        """A symbolic value equal to a single decision variable."""
        return cls(as_linexpr(variable), variable.lower, variable.upper)

    # -- inspection -------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        """Whether the value is a plain float."""
        return isinstance(self.expr, float)

    def as_float(self) -> float:
        """The constant value; raises if the value is symbolic."""
        if not isinstance(self.expr, float):
            raise ModelError("symbolic value is not constant")
        return self.expr

    def as_expr(self) -> "LinExpr | float":
        """The value as something accepted by the MILP layer."""
        return self.expr

    # -- arithmetic -------------------------------------------------------------

    def add(self, other: "SymbolicValue") -> "SymbolicValue":
        """Sum of two symbolic values (bounds add)."""
        if self.is_constant and other.is_constant:
            return SymbolicValue.constant(self.as_float() + other.as_float())
        expr = _to_expr(self.expr) + _to_expr(other.expr)
        return SymbolicValue(expr, self.lower + other.lower, self.upper + other.upper)

    def scale(self, factor: float) -> "SymbolicValue":
        """Scalar multiple of a symbolic value (bounds scale and may swap)."""
        if self.is_constant:
            return SymbolicValue.constant(self.as_float() * factor)
        expr = _to_expr(self.expr) * factor
        bounds = sorted((self.lower * factor, self.upper * factor))
        return SymbolicValue(expr, bounds[0], bounds[1])

    def subtract(self, other: "SymbolicValue") -> "SymbolicValue":
        """Difference of two symbolic values."""
        return self.add(other.scale(-1.0))

    def widen(self, lower: float, upper: float) -> "SymbolicValue":
        """Return the same value with bounds widened to include [lower, upper]."""
        return SymbolicValue(self.expr, min(self.lower, lower), max(self.upper, upper))


def _to_expr(value: "float | LinExpr") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.from_constant(value)


def affine_to_symbolic(
    affine: Affine,
    attribute_values: Mapping[str, SymbolicValue],
    param_variables: Mapping[str, Variable],
    param_bounds: Mapping[str, tuple[float, float]],
) -> SymbolicValue:
    """Instantiate an :class:`~repro.queries.expressions.Affine` form.

    Attribute references are substituted with the tuple's current symbolic
    values; parameters become decision variables when the owning query is
    parameterized (present in ``param_variables``) and plain numbers otherwise.
    """
    result = SymbolicValue.constant(affine.constant)
    for name, coeff in affine.attr_coeffs.items():
        if coeff == 0.0:
            continue
        try:
            value = attribute_values[name]
        except KeyError:
            raise ModelError(f"no symbolic value available for attribute '{name}'") from None
        result = result.add(value.scale(coeff))
    for name, coeff in affine.param_coeffs.items():
        if coeff == 0.0:
            continue
        if name in param_variables:
            variable = param_variables[name]
            lower, upper = param_bounds.get(name, (variable.lower, variable.upper))
            result = result.add(SymbolicValue(as_linexpr(variable), lower, upper).scale(coeff))
        else:
            result = result.add(SymbolicValue.constant(affine.param_values[name]).scale(coeff))
    return result
