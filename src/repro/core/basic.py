"""The ``basic`` repair algorithm (Algorithm 1) with optional slicing.

``BasicRepairer`` parameterizes every candidate query at once, encodes the
whole log (all tuples, or only the complaint tuples when tuple slicing is
enabled), solves a single MILP, and converts the assignment into a repaired
log.  The slicing optimizations of Section 5 are toggled through
:class:`~repro.core.config.QFixConfig`.
"""

from __future__ import annotations

import time

from repro.core.complaints import ComplaintSet
from repro.core.config import QFixConfig
from repro.core.encoder import LogEncoder
from repro.core.refinement import refine_repair
from repro.core.repair import RepairResult, build_repair_result
from repro.core.slicing import relevant_attributes, relevant_queries
from repro.db.database import Database
from repro.db.schema import Schema
from repro.milp.solvers import Solver, get_solver, solve_with_warm_start
from repro.obs import trace as obs
from repro.queries.log import QueryLog


class BasicRepairer:
    """Single-shot MILP repair over the whole query log."""

    def __init__(self, config: QFixConfig | None = None, solver: Solver | None = None) -> None:
        self.config = config if config is not None else QFixConfig.basic()
        self.solver = solver if solver is not None else get_solver(
            self.config.solver,
            time_limit=self.config.time_limit,
            mip_gap=self.config.mip_gap,
            use_presolve=self.config.use_presolve,
        )

    def repair(
        self,
        schema: Schema,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        warm_start: "dict[str, float] | None" = None,
    ) -> RepairResult:
        """Diagnose ``complaints`` and return a repaired log.

        ``warm_start`` is a variable assignment from a previous solve of the
        same encoding (see :meth:`EncodedProblem.solution_hint`); it seeds
        the solver's incumbent when it still covers the freshly built model.
        """
        config = self.config
        complaint_attrs = complaints.complaint_attributes(final)

        if config.query_slicing:
            candidates = relevant_queries(
                log, complaint_attrs, schema, single_fault=False
            )
        else:
            candidates = list(range(len(log)))

        encoded_attrs = None
        if config.attribute_slicing:
            encoded_attrs = relevant_attributes(log, candidates, complaint_attrs, schema)

        rids = complaints.rids if config.tuple_slicing else None

        encode_start = time.perf_counter()
        with obs.span("solver.encode", queries=len(log), candidates=len(candidates)) as encode_span:
            encoder = LogEncoder(
                schema,
                initial,
                final,
                log,
                complaints,
                config,
                parameterized=candidates,
                rids=rids,
                encoded_attributes=encoded_attrs,
                candidate_indices=candidates if config.query_slicing else None,
            )
            problem = encoder.encode()
            encode_span.set_attribute("variables", problem.model.num_variables)
        encode_seconds = time.perf_counter() - encode_start

        solution = solve_with_warm_start(
            self.solver, problem.model, problem.solution_hint(warm_start)
        )
        result = build_repair_result(
            initial,
            log,
            problem,
            solution,
            complaints,
            config=config,
            encode_seconds=encode_seconds,
            solve_seconds=solution.solve_seconds,
        )
        if result.feasible and config.tuple_slicing and config.refinement:
            result = refine_repair(
                schema,
                initial,
                final,
                log,
                complaints,
                result,
                config=config,
                solver=self.solver,
            )
        return result
