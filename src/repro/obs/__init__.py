"""``repro.obs`` — observability: tracing, the flight recorder, and logging.

Three stdlib-only pieces, designed to cost ~nothing when off:

* :mod:`repro.obs.trace` — span trees with thread-local context propagation
  across every tier (HTTP → engine → executor → solver → WAL), including
  worker threads (:class:`ContextHandle`) and worker processes
  (:func:`context_payload` / :func:`remote_context` / :func:`adopt_spans`);
* :mod:`repro.obs.store` — the bounded in-memory :class:`TraceStore` ring
  buffer whose slow-trace annex acts as a flight recorder for the requests
  worth debugging after the fact;
* :mod:`repro.obs.logs` — the ``qfix.`` logger hierarchy with trace-id
  correlation and an optional JSON-lines format.

The usual wiring is one :func:`configure_tracing` (and, when serving,
:func:`configure_logging`) call at process start; every instrumentation point
below reads the thread-local context and no-ops when nothing is sampled.
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.store import TraceStore
from repro.obs.trace import (
    NOOP_SPAN,
    ContextHandle,
    Span,
    Tracer,
    adopt_into,
    adopt_spans,
    attached,
    build_trace_tree,
    configure_tracing,
    context_payload,
    current_handle,
    current_trace_id,
    get_tracer,
    handle_for,
    maybe_trace,
    record_span,
    remote_context,
    reset_tracing,
    set_tracer,
    span,
    start_detached,
)

__all__ = [
    "NOOP_SPAN",
    "ContextHandle",
    "Span",
    "TraceStore",
    "Tracer",
    "adopt_into",
    "adopt_spans",
    "attached",
    "build_trace_tree",
    "configure_logging",
    "configure_tracing",
    "context_payload",
    "current_handle",
    "current_trace_id",
    "get_logger",
    "get_tracer",
    "handle_for",
    "maybe_trace",
    "record_span",
    "remote_context",
    "reset_tracing",
    "set_tracer",
    "span",
    "start_detached",
]
