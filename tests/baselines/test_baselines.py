"""Tests for the decision-tree learner and the DecTree baseline repairer."""

import numpy as np
import pytest

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.baselines.dectree_repair import DecTreeRepairer
from repro.core.complaints import ComplaintSet
from repro.core.metrics import evaluate_repair
from repro.db.database import Database
from repro.db.schema import Schema
from repro.exceptions import RepairError
from repro.queries.executor import replay
from repro.queries.expressions import Attr, Param
from repro.queries.log import QueryLog
from repro.queries.predicates import Comparison, And
from repro.queries.query import DeleteQuery, UpdateQuery


class TestDecisionTree:
    def test_learns_threshold(self):
        X = [[float(value)] for value in range(20)]
        y = [value >= 12 for value in range(20)]
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict([[15.0]]) == [True]
        assert tree.predict([[3.0]]) == [False]
        rules = tree.positive_rules()
        assert len(rules) == 1
        feature, op, threshold = rules[0].conditions[0]
        assert feature == 0 and op == ">" and 11 <= threshold <= 12

    def test_learns_2d_box(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(200, 2))
        y = [(2 <= a <= 5) and (4 <= b <= 8) for a, b in X]
        tree = DecisionTreeClassifier(max_depth=6).fit(X.tolist(), y)
        predictions = tree.predict(X.tolist())
        accuracy = np.mean([p == t for p, t in zip(predictions, y)])
        assert accuracy > 0.95

    def test_pure_labels_yield_leaf(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0]], [True, True])
        assert tree.root.is_leaf
        assert tree.predict([[5.0]]) == [True]

    def test_min_samples_leaf_suppresses_tiny_splits(self):
        X = [[float(v)] for v in range(20)]
        y = [v == 7 for v in range(20)]  # a single positive example
        tree = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)
        assert tree.positive_rules() == []

    def test_unfitted_classifier_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_one([1.0])

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0]], [True, False])

    def test_rule_matches(self):
        X = [[float(v)] for v in range(10)]
        y = [v >= 5 for v in range(10)]
        tree = DecisionTreeClassifier().fit(X, y)
        rule = tree.positive_rules()[0]
        assert rule.matches([9.0])
        assert not rule.matches([0.0])


@pytest.fixture()
def single_query_case():
    schema = Schema.build("t", ["a", "b"], upper=100)
    rows = [{"a": float(value), "b": 10.0} for value in range(0, 100, 5)]
    initial = Database(schema, rows)
    true_query = UpdateQuery(
        "t",
        {"b": Param("q1_set", 77.0)},
        And([
            Comparison(Attr("a"), ">=", Param("q1_lo", 40.0)),
            Comparison(Attr("a"), "<=", Param("q1_hi", 70.0)),
        ]),
        label="q1",
    )
    true_log = QueryLog([true_query])
    corrupted_log = true_log.with_params({"q1_lo": 10.0, "q1_set": 55.0})
    dirty = replay(initial, corrupted_log)
    truth = replay(initial, true_log)
    complaints = ComplaintSet.from_states(dirty, truth)
    return schema, initial, corrupted_log, true_log, dirty, truth, complaints


class TestDecTreeRepairer:
    def test_repairs_single_query(self, single_query_case):
        schema, initial, corrupted_log, _, dirty, truth, complaints = single_query_case
        result = DecTreeRepairer(min_samples_leaf=1).repair(
            schema, initial, dirty, corrupted_log, complaints, query_index=0
        )
        assert result.feasible
        accuracy = evaluate_repair(initial, dirty, truth, result.repaired_log)
        assert accuracy.recall > 0.8

    def test_rejects_non_update(self, single_query_case):
        schema, initial, _, _, dirty, _, complaints = single_query_case
        log = QueryLog([DeleteQuery("t")])
        with pytest.raises(RepairError):
            DecTreeRepairer().repair(schema, initial, dirty, log, complaints, query_index=0)

    def test_rejects_inner_query_of_long_log(self, single_query_case):
        schema, initial, corrupted_log, _, dirty, _, complaints = single_query_case
        longer = corrupted_log.append(UpdateQuery("t", {"b": Attr("b")}, None, label="q2"))
        with pytest.raises(RepairError):
            DecTreeRepairer().repair(schema, initial, dirty, longer, complaints, query_index=0)

    def test_learned_where_is_recorded(self, single_query_case):
        schema, initial, corrupted_log, _, dirty, _, complaints = single_query_case
        result = DecTreeRepairer(min_samples_leaf=1).repair(
            schema, initial, dirty, corrupted_log, complaints, query_index=0
        )
        assert result.learned_where is not None
        assert result.set_values  # the SET constant was re-fit
