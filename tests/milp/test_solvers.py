"""Tests for the MILP solver backends (HiGHS and branch-and-bound)."""

import pytest

from repro.exceptions import SolverError
from repro.milp.model import Model
from repro.milp.solution import SolveStatus
from repro.milp.solvers import available_solvers, get_solver


def _knapsack_model():
    """A small 0/1 knapsack: maximize 6x1+5x2+4x3 s.t. 5x1+4x2+3x3 <= 8."""
    model = Model("knapsack")
    x1 = model.add_binary("x1")
    x2 = model.add_binary("x2")
    x3 = model.add_binary("x3")
    model.add_le(5 * x1 + 4 * x2 + 3 * x3, 8)
    model.set_objective(-(6 * x1 + 5 * x2 + 4 * x3))
    return model


def _infeasible_model():
    model = Model("infeasible")
    x = model.add_continuous("x", 0, 1)
    model.add_ge(x, 2)
    return model


@pytest.fixture(params=["highs", "branch-and-bound"])
def solver(request):
    return get_solver(request.param, time_limit=30.0)


class TestSolverBackends:
    def test_knapsack_optimum(self, solver):
        solution = solver.solve(_knapsack_model())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-10.0)
        # x1 and x3 selected (weight 8, value 10).
        assert solution.value("x1") == pytest.approx(1.0)
        assert solution.value("x3") == pytest.approx(1.0)

    def test_infeasible_detected(self, solver):
        solution = solver.solve(_infeasible_model())
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution

    def test_continuous_lp(self, solver):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_le(x + y, 6)
        model.set_objective(-(x + 2 * y))
        solution = solver.solve(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-12.0)
        assert solution.value("y") == pytest.approx(6.0)

    def test_empty_model(self, solver):
        solution = solver.solve(Model())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == 0.0

    def test_solution_satisfies_model(self, solver):
        model = _knapsack_model()
        solution = solver.solve(model)
        assert model.evaluate_solution(solution)


class TestBackendsAgree:
    def test_same_objective_on_mixed_model(self):
        model = Model()
        x = model.add_integer("x", 0, 5)
        y = model.add_continuous("y", 0, 5)
        model.add_le(2 * x + y, 7)
        model.add_ge(y, 0.5)
        model.set_objective(-(3 * x + y))
        objectives = []
        for name in ("highs", "branch-and-bound"):
            solution = get_solver(name).solve(model)
            assert solution.status is SolveStatus.OPTIMAL
            objectives.append(solution.objective)
        assert objectives[0] == pytest.approx(objectives[1], abs=1e-6)


class TestRegistry:
    def test_available_and_aliases(self):
        names = available_solvers()
        assert "highs" in names and "branch-and-bound" in names
        assert get_solver("scipy").name == "highs"
        assert get_solver("bnb").name == "branch-and-bound"

    def test_unknown_solver(self):
        with pytest.raises(SolverError):
            get_solver("gurobi")

    def test_solution_value_lookup(self):
        solution = get_solver("highs").solve(_knapsack_model())
        with pytest.raises(KeyError):
            solution.value("missing")
        assert solution.value("missing", default=0.0) == 0.0
