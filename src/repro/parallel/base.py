"""Execution strategies: the :class:`Executor` abstraction and its registry.

The diagnosis engine fans batch work out through a pluggable *execution
strategy*, mirroring the solver and diagnoser registries: strategies register
a factory under a short name (``serial``, ``thread``, ``process``) and the
engine instantiates one per configuration.  The split matters because the
pure-Python branch-and-bound backend is CPU-bound — threads serialize on the
GIL, so real batch throughput needs processes — while tiny batches and tests
want the zero-overhead serial path.

The moving parts:

* :class:`BatchItem` — one request as the *scheduler* sees it: the live
  :class:`~repro.service.types.DiagnosisRequest` plus its input position,
  shard key, and warm-start hint.  Local strategies execute it directly.
* :class:`WorkUnit` — the picklable envelope the *process* strategy ships to
  a worker: the serialized request payload (JSON-native, via
  ``DiagnosisRequest.to_dict``), the engine's default config payload being
  implicit in the worker initializer, and the warm-start hint.
* :class:`Executor` — ``submit(item) -> Future`` plus lifecycle hooks.  The
  scheduler (:mod:`repro.parallel.scheduler`) drives any strategy through the
  same bounded-window streaming loop.

Strategies are bound to an engine with :meth:`Executor.bind` before first
use; binding twice to different engines is an error (an executor owns
per-engine state such as pools and shard maps).
"""

from __future__ import annotations

import abc
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable

from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.engine import DiagnosisEngine
    from repro.service.types import DiagnosisRequest, DiagnosisResponse


@dataclass
class BatchItem:
    """One scheduled request: position, payload, routing, and retry state."""

    #: Position in the input batch (responses are re-ordered by this).
    index: int
    #: The live request object (local strategies execute it directly).
    request: "DiagnosisRequest"
    #: Routing key: requests with equal keys land on the same process shard,
    #: so a repeat diagnosis reuses that worker's local warm-start LRU.
    shard_key: Hashable = None
    #: Warm-start hint from the parent engine's cache, forwarded to workers.
    warm_hint: dict[str, float] | None = None
    #: Submission attempts so far (bounded retry after a worker crash).
    attempts: int = 0
    #: Trace context (:class:`repro.obs.trace.ContextHandle`) when the batch
    #: runs inside a sampled trace; executors attach worker-side spans to it.
    trace: Any = None

    @property
    def request_id(self) -> str:
        return self.request.request_id


@dataclass
class WorkUnit:
    """The picklable envelope shipped to a process-pool worker.

    Everything here is pickle-safe by construction: ``payload`` is the
    JSON-native ``DiagnosisRequest.to_dict()`` form (the per-request config
    override rides inside it), ``warm_hint`` is a plain name→value mapping,
    and ``shard`` is the resolved shard index.  The worker-side engine's
    *default* config is shipped once per worker through the pool initializer,
    not per unit.
    """

    index: int
    request_id: str
    payload: dict[str, Any]
    shard: int = 0
    warm_hint: dict[str, float] | None = field(default=None)
    #: Picklable trace context (``{trace_id, parent_span_id}``) so the worker
    #: process continues the parent's trace across the pickle boundary.
    trace_context: dict[str, str] | None = field(default=None)


class Executor(abc.ABC):
    """One execution strategy behind :meth:`DiagnosisEngine.diagnose_batch`.

    Lifecycle: construct → :meth:`bind` to an engine → any number of
    :meth:`submit` calls (driven by the scheduler) → :meth:`close`.
    """

    #: Registry name; subclasses override.
    name: str = "?"

    #: Whether the strategy routes by :attr:`BatchItem.shard_key` (and ships
    #: :attr:`BatchItem.warm_hint` across a boundary).  Strategies that
    #: execute in-process leave this ``False`` so the engine skips computing
    #: fingerprints it would recompute at diagnosis time anyway.
    uses_shard_routing: bool = False

    def __init__(self) -> None:
        self._engine: "DiagnosisEngine | None" = None

    @property
    def engine(self) -> "DiagnosisEngine":
        if self._engine is None:
            raise ReproError(
                f"executor '{self.name}' is not bound to an engine; "
                "call bind(engine) first"
            )
        return self._engine

    def bind(self, engine: "DiagnosisEngine") -> "Executor":
        """Attach the engine this executor serves; idempotent per engine."""
        if self._engine is not None and self._engine is not engine:
            raise ReproError(
                f"executor '{self.name}' is already bound to a different engine"
            )
        self._engine = engine
        return self

    @abc.abstractmethod
    def submit(self, item: BatchItem) -> "Future[DiagnosisResponse]":
        """Schedule one item; the returned future resolves to its response."""

    def retryable(self, item: BatchItem, error: BaseException) -> bool:
        """Whether ``error`` warrants resubmitting ``item`` (e.g. a worker
        crash that broke a pool out from under innocent neighbours)."""
        return False

    def describe(self) -> dict[str, Any]:
        """Introspection payload for logs / benchmark reports."""
        return {"name": self.name}

    def close(self) -> None:
        """Release pools and worker processes; safe to call repeatedly."""

    # -- plumbing ------------------------------------------------------------------

    @staticmethod
    def _completed(response: "DiagnosisResponse") -> "Future[DiagnosisResponse]":
        future: "Future[DiagnosisResponse]" = Future()
        future.set_result(response)
        return future

    @staticmethod
    def _failed(error: BaseException) -> "Future[DiagnosisResponse]":
        future: "Future[DiagnosisResponse]" = Future()
        future.set_exception(error)
        return future


# -- the registry ----------------------------------------------------------------------

#: ``factory(max_workers) -> Executor``
ExecutorFactory = Callable[[int], Executor]

_FACTORIES: Dict[str, ExecutorFactory] = {}


def register_executor(
    name: str, factory: ExecutorFactory, *, replace: bool = False
) -> None:
    """Register an execution strategy under ``name``.

    Mirrors the diagnoser registry: re-registering an existing name raises
    :class:`ReproError` unless ``replace=True`` — silently swapping the
    strategy production traffic runs on would be invisible otherwise.
    """
    if name in _FACTORIES and not replace:
        raise ReproError(
            f"executor '{name}' is already registered; pass replace=True to override"
        )
    _FACTORIES[name] = factory


def available_executors() -> tuple[str, ...]:
    """Names of the registered execution strategies, sorted."""
    return tuple(sorted(_FACTORIES))


def get_executor(name: str, *, max_workers: int = 1) -> Executor:
    """Instantiate an execution strategy by name.

    Raises :class:`ReproError` for unknown names, listing what is available,
    and for a non-positive ``max_workers`` — both *before* any work is
    submitted, so a misconfigured deployment fails at wiring time.
    """
    if max_workers < 1:
        raise ReproError("max_workers must be at least 1")
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown executor '{name}'; available: {', '.join(available_executors())}"
        ) from None
    return factory(max_workers)


def validate_executor_name(name: str) -> str:
    """Check ``name`` is registered (without instantiating); returns it."""
    if name not in _FACTORIES:
        raise ReproError(
            f"unknown executor '{name}'; available: {', '.join(available_executors())}"
        )
    return name
