"""Query logs and distances between logs.

A :class:`QueryLog` is the ordered sequence ``Q = {q1, ..., qn}`` of update
queries that operated on the database.  The log is immutable; repairs produce
new logs via :meth:`QueryLog.with_query` or :meth:`QueryLog.with_params`.

:func:`log_distance` implements the normalized Manhattan distance
``d(Q, Q*)`` between the parameters of two structurally identical logs — the
quantity the MILP objective minimizes (Section 4.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import QueryModelError
from repro.queries.query import Query


class QueryLog:
    """An immutable, ordered sequence of queries."""

    def __init__(self, queries: Iterable[Query] = ()) -> None:
        self._queries: tuple[Query, ...] = tuple(queries)

    # -- sequence protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int | slice) -> "Query | QueryLog":
        if isinstance(index, slice):
            return QueryLog(self._queries[index])
        return self._queries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryLog):
            return NotImplemented
        return self._queries == other._queries

    def __hash__(self) -> int:
        return hash(self._queries)

    @property
    def queries(self) -> tuple[Query, ...]:
        """The underlying tuple of queries."""
        return self._queries

    # -- construction helpers ----------------------------------------------------

    def append(self, query: Query) -> "QueryLog":
        """Return a new log with ``query`` appended."""
        return QueryLog(self._queries + (query,))

    def extend(self, queries: Iterable[Query]) -> "QueryLog":
        """Return a new log with ``queries`` appended."""
        return QueryLog(self._queries + tuple(queries))

    def with_query(self, index: int, query: Query) -> "QueryLog":
        """Return a new log where the query at ``index`` is replaced."""
        if not 0 <= index < len(self._queries):
            raise QueryModelError(f"query index {index} out of range")
        queries = list(self._queries)
        queries[index] = query
        return QueryLog(queries)

    def with_params(self, mapping: Mapping[str, float]) -> "QueryLog":
        """Return a new log with parameter values replaced across all queries.

        Parameter names are globally unique across the log (enforced by
        :meth:`params`), so a flat mapping suffices.  Names that no query in
        the log owns raise :class:`QueryModelError` immediately — silently
        ignoring them would make a misspelled repair look like a no-op repair.
        """
        if not mapping:
            return QueryLog(self._queries)
        mapped = set(mapping)
        found: set[str] = set()
        rebuilt = list(self._queries)
        for index, query in enumerate(self._queries):
            owned = mapped.intersection(query.params())
            if owned:
                rebuilt[index] = query.with_params(mapping)
                found |= owned
        unknown = mapped - found
        if unknown:
            raise QueryModelError(
                f"unknown parameter name(s) {sorted(unknown)}; no query in the "
                "log owns them (valid repairs only change existing parameters)"
            )
        # Untouched queries are reused by identity, which keeps a sparse repair
        # of a long log cheap and lets log comparisons skip unchanged entries.
        return QueryLog(rebuilt)

    # -- introspection -----------------------------------------------------------

    def params(self) -> dict[str, float]:
        """All parameters in the log, ``{name: value}``.

        Raises :class:`QueryModelError` if two queries share a parameter name
        (parameters must be unique per log so that repairs are unambiguous).
        """
        merged: dict[str, float] = {}
        for index, query in enumerate(self._queries):
            for name, value in query.params().items():
                if name in merged:
                    raise QueryModelError(
                        f"parameter '{name}' reused by query index {index}; "
                        "parameter names must be unique across the log"
                    )
                merged[name] = value
        return merged

    def params_of(self, index: int) -> dict[str, float]:
        """Parameters of the query at ``index``."""
        query = self._queries[index]
        return query.params()

    def labels(self) -> tuple[str, ...]:
        """Labels of all queries (empty strings when unset)."""
        return tuple(query.label for query in self._queries)

    def render_sql(self) -> str:
        """Render the whole log as a SQL script."""
        lines = []
        for index, query in enumerate(self._queries):
            label = query.label or f"q{index + 1}"
            lines.append(f"-- {label}")
            lines.append(query.render_sql() + ";")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryLog(n={len(self._queries)})"


def log_distance(
    original: QueryLog | Sequence[Query],
    repaired: QueryLog | Sequence[Query],
    *,
    normalized: bool = False,
) -> float:
    """Manhattan distance between the parameters of two logs.

    The logs must be structurally identical (same queries, same parameter
    names).  With ``normalized=True`` the distance is divided by the total
    number of parameters, matching the "normalized Manhattan distance" of
    Section 4.3.
    """
    original_log = original if isinstance(original, QueryLog) else QueryLog(original)
    repaired_log = repaired if isinstance(repaired, QueryLog) else QueryLog(repaired)
    if len(original_log) != len(repaired_log):
        raise QueryModelError("logs must have the same length to compute a distance")
    total = 0.0
    count = 0
    for query_a, query_b in zip(original_log, repaired_log):
        if query_a is query_b:
            # Sparse repairs reuse untouched queries by identity
            # (:meth:`QueryLog.with_params`); their distance contribution is
            # exactly zero, but their parameter count still matters for the
            # normalized variant.
            if normalized:
                count += len(query_a.params())
            continue
        params_a = query_a.params()
        params_b = query_b.params()
        if set(params_a) != set(params_b):
            raise QueryModelError(
                "logs are not structurally identical (parameter names differ)"
            )
        for name, value in params_a.items():
            total += abs(value - params_b[name])
            count += 1
    if normalized and count:
        return total / count
    return total


def changed_queries(
    original: QueryLog, repaired: QueryLog, *, tolerance: float = 1e-6
) -> list[int]:
    """Indices of queries whose parameters differ between the two logs."""
    if len(original) != len(repaired):
        raise QueryModelError("logs must have the same length")
    changed = []
    for index, (query_a, query_b) in enumerate(zip(original, repaired)):
        if query_a is query_b:
            continue
        params_a = query_a.params()
        params_b = query_b.params()
        if set(params_a) != set(params_b):
            raise QueryModelError(
                "logs are not structurally identical (parameter names differ)"
            )
        if any(abs(params_a[name] - params_b[name]) > tolerance for name in params_a):
            changed.append(index)
    return changed
