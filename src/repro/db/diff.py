"""Tuple-wise comparison of database states.

The experiments build the *true complaint set* by executing both the clean and
the corrupted query log and diffing the resulting states (Section 7.1 of the
paper).  :func:`diff_states` performs that diff and reports, for each rid that
differs, the dirty row, the clean ("true") row, and the attributes involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.db.database import Database
from repro.db.table import Row


@dataclass(frozen=True)
class RowDiff:
    """A single discrepancy between the dirty and the true database state.

    Exactly one of the following shapes occurs:

    * value change: ``dirty`` and ``clean`` both present, values differ;
    * spurious tuple: ``dirty`` present, ``clean`` is ``None`` (the tuple
      should not exist and the complaint asks for its removal);
    * missing tuple: ``dirty`` is ``None``, ``clean`` present (the tuple
      should exist and the complaint asks for its insertion).
    """

    rid: int
    dirty: Row | None
    clean: Row | None
    attributes: tuple[str, ...]

    @property
    def kind(self) -> str:
        """One of ``"update"``, ``"delete"`` (spurious), or ``"insert"`` (missing)."""
        if self.dirty is not None and self.clean is not None:
            return "update"
        if self.dirty is not None:
            return "delete"
        return "insert"


def diff_states(
    dirty: Database, clean: Database, *, tolerance: float = 1e-6
) -> list[RowDiff]:
    """Compare two database states tuple-by-tuple.

    Parameters
    ----------
    dirty:
        The state produced by the (possibly corrupted) query log.
    clean:
        The true state that should have been produced.
    tolerance:
        Numeric tolerance when comparing attribute values.

    Returns
    -------
    list[RowDiff]
        One entry per rid whose presence or values differ, ordered by rid.
    """
    diffs: list[RowDiff] = []
    rids = sorted(set(dirty.rids) | set(clean.rids))
    for rid in rids:
        dirty_row = dirty.get(rid)
        clean_row = clean.get(rid)
        if dirty_row is None and clean_row is None:  # pragma: no cover - impossible
            continue
        if dirty_row is None or clean_row is None:
            attrs = tuple(sorted((dirty_row or clean_row).values))  # type: ignore[union-attr]
            diffs.append(RowDiff(rid, _maybe_copy(dirty_row), _maybe_copy(clean_row), attrs))
            continue
        differing = dirty_row.differing_attributes(clean_row, tolerance=tolerance)
        if differing:
            diffs.append(RowDiff(rid, dirty_row.copy(), clean_row.copy(), differing))
    return diffs


def iter_matching_rids(dirty: Database, clean: Database) -> Iterator[int]:
    """Yield the rids present in both states (helper for tests)."""
    clean_rids = set(clean.rids)
    for rid in dirty.rids:
        if rid in clean_rids:
            yield rid


def _maybe_copy(row: Row | None) -> Row | None:
    return row.copy() if row is not None else None
