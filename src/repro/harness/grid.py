"""Matrix cells and named grids.

A :class:`CellSpec` pairs one data-side :class:`~repro.workload.spec.ScenarioSpec`
with one algorithm-side configuration — diagnoser, MILP backend, presolve
on/off, warm vs. cold — so a grid is just a list of cells.  Named grids live
in a registry (``smoke``, ``micro``, ``full``, ``longlog``) so the CLI, CI,
and tests all sweep the same cells by name.

The cell's :meth:`~CellSpec.config` chooses the algorithm configuration the
way the paper's ablations do: the ``basic`` diagnoser runs the global
all-queries-parameterized encoding (with tuple slicing so tiny grid cells stay
tiny), ``incremental`` runs the fully optimized ``Inc_1`` search, and
``dectree`` runs the Appendix-A baseline, which is heuristic — the oracle
holds it to weaker invariants (``exact = False``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Sequence

from repro.core.config import QFixConfig
from repro.exceptions import ReproError
from repro.workload.spec import ScenarioSpec, expand_scenario_grid

#: Diagnosers whose repairs are exact (MILP-backed): the oracle requires a
#: feasible repair to resolve every reported complaint.  Heuristic baselines
#: (dectree) are exempt from the resolution and agreement invariants.
EXACT_DIAGNOSERS = frozenset({"basic", "incremental", "auto"})


@dataclass(frozen=True)
class CellSpec:
    """One cell of the matrix: a scenario crossed with an algorithm setup."""

    scenario: ScenarioSpec
    diagnoser: str = "incremental"
    solver: str = "highs"
    use_presolve: bool = True
    warm: bool = False
    #: Route this cell through the decompose-and-conquer pipeline (log
    #: compaction + connected-component splitting).  An axis like ``warm``:
    #: the decomposition differential oracle compares each decomposed cell
    #: against its monolithic twin.
    decompose: bool = False
    #: Per-solve time limit for this cell (bounds worst-case sweep time).
    time_limit: float = 30.0

    @property
    def cell_id(self) -> str:
        """Unique, stable identifier used as the request/report key."""
        parts = [self.scenario.label(), self.diagnoser, self.solver]
        if not self.use_presolve:
            parts.append("nopresolve")
        if self.warm:
            parts.append("warm")
        if self.decompose:
            parts.append("decomposed")
        return "|".join(parts)

    @property
    def exact(self) -> bool:
        """Whether this cell's diagnoser guarantees complaint resolution."""
        return self.diagnoser in EXACT_DIAGNOSERS

    def config(self) -> QFixConfig:
        """The :class:`QFixConfig` this cell submits through the engine."""
        if self.diagnoser == "basic":
            base = QFixConfig.basic(
                tuple_slicing=True, refinement=True, attribute_slicing=True
            )
        else:
            base = QFixConfig.fully_optimized()
        return base.with_overrides(
            diagnoser=self.diagnoser,
            solver=self.solver,
            use_presolve=self.use_presolve,
            decompose=self.decompose,
            time_limit=self.time_limit,
        )

    def cold_twin(self) -> "CellSpec":
        """The cold cell a warm cell re-runs (identity minus the warm flag)."""
        return replace(self, warm=False)

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "diagnoser": self.diagnoser,
            "solver": self.solver,
            "use_presolve": self.use_presolve,
            "warm": self.warm,
            "decompose": self.decompose,
            "time_limit": self.time_limit,
        }


def expand_cells(
    scenarios: Iterable[ScenarioSpec],
    *,
    diagnosers: Sequence[str] = ("incremental",),
    solvers: Sequence[str] = ("highs",),
    presolve: Sequence[bool] = (True,),
    warm: Sequence[bool] = (False,),
    decompose: Sequence[bool] = (False,),
    time_limit: float = 30.0,
) -> list[CellSpec]:
    """Cartesian product of the algorithm-side axes over ``scenarios``."""
    cells = []
    for scenario in scenarios:
        for diagnoser in diagnosers:
            for solver in solvers:
                for use_presolve in presolve:
                    for is_warm in warm:
                        for is_decomposed in decompose:
                            cells.append(
                                CellSpec(
                                    scenario=scenario,
                                    diagnoser=diagnoser,
                                    solver=solver,
                                    use_presolve=use_presolve,
                                    warm=is_warm,
                                    decompose=is_decomposed,
                                    time_limit=time_limit,
                                )
                            )
    return cells


# -- named grids ----------------------------------------------------------------------

GridFactory = Callable[[int], "list[CellSpec]"]

_GRIDS: Dict[str, GridFactory] = {}


def register_grid(name: str, factory: GridFactory, *, replace: bool = False) -> None:
    """Register a named grid (``factory(seed) -> cells``)."""
    if name in _GRIDS and not replace:
        raise ReproError(
            f"grid '{name}' is already registered; pass replace=True to override"
        )
    _GRIDS[name] = factory


def available_grids() -> tuple[str, ...]:
    """Names of the registered grids, sorted."""
    return tuple(sorted(_GRIDS))


def get_grid(name: str, seed: int = 0) -> list[CellSpec]:
    """Materialize a named grid for ``seed``."""
    try:
        factory = _GRIDS[name]
    except KeyError:
        raise ReproError(
            f"unknown grid '{name}'; available: {', '.join(available_grids())}"
        ) from None
    return factory(seed)


def _micro_grid(seed: int) -> list[CellSpec]:
    """A minimal differential slice: 2 scenarios x {basic,incremental} x {highs,bnb}.

    Small enough for tier-1 tests and the golden report; still crosses every
    differential oracle (backend agreement, presolve/warm invariance via the
    smoke grid, incremental-vs-basic convergence).
    """
    scenarios = [
        ScenarioSpec(
            family="synthetic",
            n_tuples=20,
            n_queries=6,
            corruption="predicate",
            position="early",
            seed=seed,
        ),
        ScenarioSpec(
            family="tatp",
            n_tuples=30,
            n_queries=8,
            corruption="workload",
            position="late",
            seed=seed,
        ),
    ]
    return expand_cells(
        scenarios,
        diagnosers=("basic", "incremental"),
        solvers=("highs", "branch-and-bound"),
        time_limit=20.0,
    )


def _smoke_grid(seed: int) -> list[CellSpec]:
    """The CI grid: every axis represented, sized to finish in well under a minute.

    Six scenarios (three workload families, four corruption classes, early /
    late / spread placement, complete and incomplete complaint sets) crossed
    with both diagnosers and both MILP backends, plus presolve-off, warm, and
    dectree riders on the first synthetic scenario.
    """
    base = dict(n_tuples=25, n_queries=8, seed=seed)
    scenarios = [
        ScenarioSpec(corruption="predicate", position="early", **base),
        ScenarioSpec(corruption="set-clause", position="late", **base),
        ScenarioSpec(corruption="multi-param", position="spread", n_corruptions=2, **base),
        ScenarioSpec(family="synthetic-point", corruption="workload", position="early", complaint_fraction=0.6, **base),
        ScenarioSpec(family="tpcc", corruption="workload", position="late", **base),
        ScenarioSpec(family="tatp", corruption="workload", position="early", **base),
    ]
    cells = expand_cells(
        scenarios,
        diagnosers=("basic", "incremental"),
        solvers=("highs", "branch-and-bound"),
        time_limit=20.0,
    )
    riders_on = scenarios[0]
    cells += expand_cells(
        [riders_on],
        diagnosers=("incremental",),
        solvers=("highs",),
        presolve=(False,),
        time_limit=20.0,
    )
    cells += expand_cells(
        [riders_on],
        diagnosers=("incremental",),
        solvers=("highs", "branch-and-bound"),
        warm=(True,),
        time_limit=20.0,
    )
    cells += expand_cells(
        [riders_on], diagnosers=("dectree",), solvers=("highs",), time_limit=20.0
    )
    # Long-history riders: clustered long-log scenarios in monolithic /
    # decomposed pairs, so CI runs the decomposition differential oracle on
    # every sweep (including a complaint set spanning two components).
    longlog = [
        ScenarioSpec(
            family="long-log",
            n_tuples=32,
            n_queries=64,
            corruption="set-clause",
            position="early",
            seed=seed,
        ),
        ScenarioSpec(
            family="long-log",
            n_tuples=32,
            n_queries=64,
            corruption="workload",
            position="spread",
            n_corruptions=2,
            seed=seed,
        ),
    ]
    cells += expand_cells(
        longlog,
        diagnosers=("basic", "incremental"),
        solvers=("highs",),
        decompose=(False, True),
        time_limit=20.0,
    )
    return cells


def _full_grid(seed: int) -> list[CellSpec]:
    """The exhaustive sweep: every family x corruption x position x completeness."""
    scenarios = expand_scenario_grid(
        families=("synthetic", "synthetic-relative", "synthetic-point", "tpcc", "tatp"),
        corruptions=("workload", "multi-param", "predicate", "set-clause"),
        positions=("early", "late"),
        complaint_fractions=(1.0, 0.5),
        n_tuples=40,
        n_queries=10,
        seed=seed,
    )
    cells = expand_cells(
        scenarios,
        diagnosers=("basic", "incremental"),
        solvers=("highs", "branch-and-bound"),
        time_limit=30.0,
    )
    cells += expand_cells(
        scenarios[:4],
        diagnosers=("incremental",),
        solvers=("highs",),
        presolve=(False,),
        warm=(False, True),
        time_limit=30.0,
    )
    return cells


def _longlog_grid(seed: int) -> list[CellSpec]:
    """The long-history differential sweep: decomposed vs monolithic at 1k queries.

    Every cell appears twice — with and without ``decompose`` — so the
    decomposition differential oracle certifies identical verdicts and repairs
    at the scale the pipeline is built for.  The generous time limit lets the
    monolithic twin finish (or honestly time out) instead of crashing the
    comparison.
    """
    scenarios = [
        ScenarioSpec(
            family="long-log",
            n_tuples=64,
            n_queries=1000,
            corruption="set-clause",
            position="late",
            seed=seed,
        ),
        ScenarioSpec(
            family="long-log",
            n_tuples=64,
            n_queries=1000,
            corruption="workload",
            position="spread",
            n_corruptions=2,
            seed=seed,
        ),
    ]
    return expand_cells(
        scenarios,
        diagnosers=("basic", "incremental"),
        solvers=("highs",),
        decompose=(False, True),
        time_limit=120.0,
    )


register_grid("micro", _micro_grid)
register_grid("smoke", _smoke_grid)
register_grid("full", _full_grid)
register_grid("longlog", _longlog_grid)
