"""Decision variables for the MILP modeling layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ModelError


class VarType(enum.Enum):
    """Kind of decision variable."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    INTEGER = "integer"


@dataclass(frozen=True, eq=False)
class Variable:
    """A decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_variable`,
    which assigns the column ``index`` and enforces name uniqueness.  Identity
    (not name equality) is used for hashing so that expressions remain valid
    even if two models happen to reuse a name.
    """

    name: str
    index: int
    lower: float
    upper: float
    var_type: VarType = VarType.CONTINUOUS

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("variable name must be non-empty")
        if self.lower > self.upper:
            raise ModelError(
                f"variable '{self.name}' has lower bound {self.lower} above "
                f"upper bound {self.upper}"
            )
        if self.var_type is VarType.BINARY and (self.lower < 0.0 or self.upper > 1.0):
            raise ModelError(f"binary variable '{self.name}' must have bounds within [0, 1]")

    @property
    def is_integral(self) -> bool:
        """Whether the variable is required to take integer values."""
        return self.var_type in (VarType.BINARY, VarType.INTEGER)

    # -- expression sugar -------------------------------------------------------
    # Importing LinExpr lazily avoids a circular import at module load time.

    def _as_expr(self) -> "LinExpr":
        from repro.milp.expr import LinExpr

        return LinExpr({self: 1.0})

    def __add__(self, other):  # type: ignore[no-untyped-def]
        return self._as_expr() + other

    def __radd__(self, other):  # type: ignore[no-untyped-def]
        return self._as_expr() + other

    def __sub__(self, other):  # type: ignore[no-untyped-def]
        return self._as_expr() - other

    def __rsub__(self, other):  # type: ignore[no-untyped-def]
        return (-1.0) * self._as_expr() + other

    def __mul__(self, factor):  # type: ignore[no-untyped-def]
        return self._as_expr() * factor

    def __rmul__(self, factor):  # type: ignore[no-untyped-def]
        return self._as_expr() * factor

    def __neg__(self):  # type: ignore[no-untyped-def]
        return self._as_expr() * -1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {self.var_type.value})"
