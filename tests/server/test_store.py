"""Unit tests for the lock-protected session store."""

import threading

import pytest

from repro.core.complaints import Complaint
from repro.server.store import NoPendingRepair, SessionNotFound, SessionStore
from repro.service.session import RepairSession
from repro.exceptions import ReproError
from repro.sql import parse_query


def make_session(initial, queries=()):
    return RepairSession(initial, list(queries))


class TestLifecycle:
    def test_create_assigns_and_echoes_id(self, initial):
        store = SessionStore()
        sid = store.create(make_session(initial))
        assert sid
        assert store.ids() == [sid]
        assert store.describe(sid)["session_id"] == sid

    def test_create_with_explicit_id(self, initial):
        store = SessionStore()
        assert store.create(make_session(initial), session_id="mine") == "mine"
        with pytest.raises(ReproError, match="already exists"):
            store.create(make_session(initial), session_id="mine")

    def test_capacity_cap(self, initial):
        store = SessionStore(max_sessions=2)
        store.create(make_session(initial))
        store.create(make_session(initial))
        with pytest.raises(ReproError, match="full"):
            store.create(make_session(initial))
        # Deleting frees a slot.
        store.delete(store.ids()[0])
        store.create(make_session(initial))

    def test_delete_unknown_raises(self, initial):
        store = SessionStore()
        with pytest.raises(SessionNotFound):
            store.delete("ghost")
        with pytest.raises(SessionNotFound):
            store.describe("ghost")


class TestRepairFlow:
    def test_diagnose_caches_result_and_accept_applies_it(
        self, initial, queries, complaint
    ):
        store = SessionStore()
        sid = store.create(make_session(initial, queries))
        store.add_complaints(sid, [complaint])
        response = store.diagnose(sid)
        assert response.ok and response.feasible
        assert store.describe(sid)["pending_repair"] is True

        summary = store.accept_repair(sid)
        assert summary["pending_repair"] is False
        assert summary["complaints"] == 0
        assert summary["full_replays"] == 2
        # The repaired log resolved the complaint in the replayed state.
        owed = {row["rid"]: row["values"]["owed"] for row in store.rows(sid)}
        assert owed[2] == pytest.approx(21_500.0)

    def test_accept_without_diagnosis_raises(self, initial, queries):
        store = SessionStore()
        sid = store.create(make_session(initial, queries))
        with pytest.raises(NoPendingRepair):
            store.accept_repair(sid)

    def test_append_invalidates_cached_repair(self, initial, queries, complaint):
        store = SessionStore()
        sid = store.create(make_session(initial, queries))
        store.add_complaints(sid, [complaint])
        assert store.diagnose(sid).ok
        store.append(sid, [parse_query("UPDATE Taxes SET pay = pay + 0", label="q3")])
        with pytest.raises(NoPendingRepair):
            store.accept_repair(sid)

    def test_failed_diagnosis_is_captured_not_raised(self, initial, queries):
        store = SessionStore()
        sid = store.create(make_session(initial, queries))
        # No complaints registered: the engine refuses, as an ok=False response.
        response = store.diagnose(sid)
        assert not response.ok
        assert "empty" in response.error_message
        assert store.describe(sid)["pending_repair"] is False


class TestConcurrency:
    def test_parallel_appends_land_exactly_once(self, initial):
        store = SessionStore()
        sid = store.create(make_session(initial))

        def append_many(worker: int):
            for index in range(20):
                store.append(
                    sid,
                    [
                        parse_query(
                            "UPDATE Taxes SET pay = pay + 0",
                            label=f"w{worker}-{index}",
                        )
                    ],
                )

        threads = [
            threading.Thread(target=append_many, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.describe(sid)["queries"] == 80


class TestAtomicityAndStaleness:
    def test_multi_append_is_all_or_nothing(self, initial):
        store = SessionStore()
        sid = store.create(make_session(initial))
        good = parse_query("UPDATE Taxes SET pay = pay + 0", label="good")
        bad = parse_query("UPDATE Taxes SET pay = bogus + 1", label="bad")
        with pytest.raises(Exception):
            store.append(sid, [good, bad])
        # The failing batch left the log untouched, so a retry succeeds.
        assert store.describe(sid)["queries"] == 0
        store.append(sid, [good])
        assert store.describe(sid)["queries"] == 1

    def test_infeasible_diagnosis_is_not_pending_repair(self, initial):
        store = SessionStore()
        sid = store.create(
            make_session(
                initial, [parse_query("UPDATE Taxes SET pay = pay + 0", label="q1")]
            )
        )
        # The complaint wants `owed` changed, but no logged query writes it:
        # the repair is infeasible.
        row = dict(initial.get(2).values)
        row["owed"] = 1.0
        store.add_complaints(sid, [Complaint(2, row)])
        response = store.diagnose(sid)
        assert response.ok and not response.feasible
        assert store.describe(sid)["pending_repair"] is False
        with pytest.raises(NoPendingRepair):
            store.accept_repair(sid)
