"""The differential oracle: invariants the paper guarantees, checked per sweep.

Example-based tests pin *outputs*; the oracle pins *properties* that must hold
for every cell of the matrix, whatever the scenario:

* **resolution** — a feasible repair from an exact (MILP-backed) diagnoser,
  replayed over the initial state, resolves every reported complaint
  (Theorem 1 territory: the encoding is sound).
* **agreement** — cells that differ only in solver backend, presolve, or warm
  start (same scenario, same diagnoser) agree on feasibility and on repair
  quality (the minimized parameter-space distance): both backends solve the
  same MILP to optimality, and presolve / warm starts are quality-preserving.
* **convergence** — on single-fault scenarios, the windowed incremental
  search finds a repair whenever the global basic encoding does (Section 5.4:
  the window walk degenerates to basic at the latest when it reaches the
  corrupted query).  Distances are *not* compared across the two algorithms:
  tuple slicing plus refinement legitimately trades repair distance for
  collateral-damage control, so only identical-config cells (the agreement
  oracle) are held to equal distance.
* **decomposition** — a cell routed through the decompose-and-conquer
  pipeline (log compaction + component splitting) agrees with its monolithic
  twin: same feasibility verdict whenever both made a claim, and the same
  repair distance and changed-query fingerprint whenever both proved
  optimality.  The pipeline is an exactness-preserving transformation, so any
  disagreement is a bug, not a trade-off.
* **scoring** — reported accuracy metrics follow from their own tuple counts,
  and the ground-truth bookkeeping matches the scenario: ``true_errors``
  equals the full complaint set, and resolving a *complete* complaint set
  implies perfect recall.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.repair import repair_resolves_complaints
from repro.harness.grid import CellSpec
from repro.harness.report import CellResult, OracleViolation
from repro.service.types import DiagnosisResponse
from repro.workload.scenario import Scenario

#: Absolute tolerance when comparing repair distances across backends.  The
#: MILPs are solved to a 1e-6 relative gap; 1e-3 absorbs rounding of integral
#: parameters without masking genuine quality differences (>= one unit).
DISTANCE_TOLERANCE = 1e-3


def check_cell(
    cell: CellSpec,
    scenario: Scenario,
    response: DiagnosisResponse,
    result_row: CellResult,
) -> list[OracleViolation]:
    """Per-cell invariants: resolution + scoring consistency."""
    violations: list[OracleViolation] = []
    cell_id = cell.cell_id

    if not response.ok:
        if cell.exact:
            violations.append(
                OracleViolation(
                    "no-crash",
                    cell_id,
                    f"exact diagnoser raised {response.error_type}: {response.error_message}",
                )
            )
        return violations

    if response.feasible and cell.exact:
        repaired_log = (
            response.result.repaired_log if response.result is not None else None
        )
        if repaired_log is None:
            violations.append(
                OracleViolation(
                    "resolution", cell_id, "feasible response carries no repaired log"
                )
            )
        elif not repair_resolves_complaints(
            scenario.initial, repaired_log, scenario.complaints
        ):
            violations.append(
                OracleViolation(
                    "resolution",
                    cell_id,
                    "replaying the returned repair does not resolve every reported complaint",
                )
            )

    accuracy = result_row.accuracy
    if accuracy is not None:
        for problem in accuracy.consistency_errors():
            violations.append(OracleViolation("scoring", cell_id, problem))
        if accuracy.true_errors != len(scenario.full_complaints):
            violations.append(
                OracleViolation(
                    "scoring",
                    cell_id,
                    f"true_errors {accuracy.true_errors} != ground-truth complaint "
                    f"count {len(scenario.full_complaints)}",
                )
            )
        complete = cell.scenario.complaint_fraction >= 1.0
        if (
            complete
            and cell.exact
            and response.feasible
            and not violations
            and accuracy.recall < 1.0 - 1e-9
        ):
            violations.append(
                OracleViolation(
                    "scoring",
                    cell_id,
                    "repair resolves a complete complaint set but recall is "
                    f"{accuracy.recall} (every true error should be fixed)",
                )
            )
    return violations


def _made_a_claim(row: CellResult) -> bool:
    """Whether the cell's solver made a claim about repair *existence*.

    ``optimal`` and ``feasible`` both exhibit a repair; ``infeasible`` proves
    there is none.  ``time_limit`` (and ``error`` et al.) claim nothing —
    comparing such a cell against one that finished would turn a budget
    artifact into a phantom violation.
    """
    return row.status in ("optimal", "feasible", "infeasible")


def _proved_optimal(row: CellResult) -> bool:
    """Whether the cell's distance is a proven optimum.

    A ``feasible`` status is an incumbent a budget cut short of proof — its
    distance is an upper bound, not the optimum, so it must not enter the
    exact-distance agreement comparison.
    """
    return row.status == "optimal"


def _differential_groups(
    rows: Iterable[tuple[CellSpec, CellResult]],
) -> dict[tuple[str, str], list[tuple[CellSpec, CellResult]]]:
    """Group executed, decided, exact cells by (scenario, diagnoser)."""
    groups: dict[tuple[str, str], list[tuple[CellSpec, CellResult]]] = {}
    for cell, row in rows:
        if row.skipped or not row.ok or not cell.exact or not _made_a_claim(row):
            continue
        groups.setdefault((cell.scenario.label(), cell.diagnoser), []).append((cell, row))
    return groups


def check_agreement(
    rows: Iterable[tuple[CellSpec, CellResult]],
) -> list[OracleViolation]:
    """Backend / presolve / warm-start agreement within each differential group."""
    violations: list[OracleViolation] = []
    for (scenario_label, diagnoser), members in _differential_groups(rows).items():
        if len(members) < 2:
            continue
        reference_cell, reference = members[0]
        for cell, row in members[1:]:
            if row.feasible != reference.feasible:
                violations.append(
                    OracleViolation(
                        "agreement",
                        cell.cell_id,
                        f"feasibility {row.feasible} disagrees with "
                        f"{reference_cell.cell_id} ({reference.feasible}) on "
                        f"{scenario_label}/{diagnoser}",
                    )
                )
        # Exact-distance agreement only among proven optima: a 'feasible'
        # incumbent that a time limit cut short is a legitimate upper bound,
        # not a disagreement about the optimum.
        optima = [(cell, row) for cell, row in members if row.feasible and _proved_optimal(row)]
        if len(optima) < 2:
            continue
        reference_cell, reference = optima[0]
        for cell, row in optima[1:]:
            if abs(row.distance - reference.distance) > DISTANCE_TOLERANCE:
                violations.append(
                    OracleViolation(
                        "agreement",
                        cell.cell_id,
                        f"repair distance {row.distance} disagrees with "
                        f"{reference_cell.cell_id} ({reference.distance})",
                    )
                )
    return violations


def check_convergence(
    rows: Iterable[tuple[CellSpec, CellResult]],
    scenarios: Mapping[str, Scenario],
) -> list[OracleViolation]:
    """Incremental-vs-basic convergence on single-fault scenarios.

    Only scenarios with exactly one corrupted query are in scope: the
    incremental search parameterizes one window at a time, so a multi-query
    corruption can legitimately defeat every window while the global basic
    encoding still finds a repair.
    """
    violations: list[OracleViolation] = []
    by_scenario: dict[str, dict[str, tuple[CellSpec, CellResult]]] = {}
    for cell, row in rows:
        if row.skipped or not row.ok or cell.warm or not cell.use_presolve:
            continue
        if cell.solver != "highs" or not cell.exact or not _made_a_claim(row):
            continue
        by_scenario.setdefault(cell.scenario.label(), {})[cell.diagnoser] = (cell, row)
    for scenario_label, cells in by_scenario.items():
        if "basic" not in cells or "incremental" not in cells:
            continue
        scenario = scenarios.get(scenario_label)
        if scenario is None or len(scenario.corrupted_indices) != 1:
            continue
        _, basic = cells["basic"]
        incremental_cell, incremental = cells["incremental"]
        if basic.feasible and not incremental.feasible:
            violations.append(
                OracleViolation(
                    "convergence",
                    incremental_cell.cell_id,
                    f"basic found a repair on {scenario_label} but the "
                    "incremental window walk did not",
                )
            )
    return violations


def check_decomposition(
    rows: Iterable[tuple[CellSpec, CellResult]],
) -> list[OracleViolation]:
    """Decomposed-vs-monolithic equivalence for otherwise identical cells.

    Log compaction drops only queries that provably cannot reach the
    complaint set, and component splitting partitions an exactly equivalent
    MILP — so a decomposed cell must reach the *same verdict* as its
    monolithic twin whenever both made a claim, and the *same repair*
    (distance and changed-query fingerprint) whenever both proved optimality.
    A twin that timed out claims nothing: decomposition finishing where the
    monolith ran out of budget is the point, not a violation.
    """
    violations: list[OracleViolation] = []
    twins: dict[tuple[str, str, str, bool, bool], dict[bool, tuple[CellSpec, CellResult]]] = {}
    for cell, row in rows:
        if row.skipped or not row.ok or not cell.exact or not _made_a_claim(row):
            continue
        key = (
            cell.scenario.label(),
            cell.diagnoser,
            cell.solver,
            cell.use_presolve,
            cell.warm,
        )
        twins.setdefault(key, {})[cell.decompose] = (cell, row)
    for pair in twins.values():
        if False not in pair or True not in pair:
            continue
        mono_cell, mono = pair[False]
        deco_cell, deco = pair[True]
        if deco.feasible != mono.feasible:
            violations.append(
                OracleViolation(
                    "decomposition",
                    deco_cell.cell_id,
                    f"feasibility {deco.feasible} disagrees with monolithic twin "
                    f"{mono_cell.cell_id} ({mono.feasible})",
                )
            )
            continue
        if not (deco.feasible and _proved_optimal(deco) and _proved_optimal(mono)):
            continue
        if abs(deco.distance - mono.distance) > DISTANCE_TOLERANCE:
            violations.append(
                OracleViolation(
                    "decomposition",
                    deco_cell.cell_id,
                    f"repair distance {deco.distance} disagrees with monolithic "
                    f"twin {mono_cell.cell_id} ({mono.distance})",
                )
            )
        if deco.changed_query_indices != mono.changed_query_indices:
            violations.append(
                OracleViolation(
                    "decomposition",
                    deco_cell.cell_id,
                    f"repair fingerprint {list(deco.changed_query_indices)} disagrees "
                    f"with monolithic twin {mono_cell.cell_id} "
                    f"({list(mono.changed_query_indices)})",
                )
            )
    return violations


def check_matrix(
    rows: "list[tuple[CellSpec, CellResult]]",
    scenarios: Mapping[str, Scenario],
) -> list[OracleViolation]:
    """All cross-cell oracles over one sweep's executed cells."""
    return (
        check_agreement(rows)
        + check_convergence(rows, scenarios)
        + check_decomposition(rows)
    )
