"""Cheap matrix-level presolve applied before any MILP backend runs.

The QFix encodings carry a lot of structure that a solver would otherwise
rediscover node by node: integral variables with fractional domain bounds,
singleton rows (``a * x <= b``) that are really variable bounds in disguise,
final-state equality rows that pin a variable outright, and the encoder's
explicit contradiction rows (``0 == 1``) for trivially infeasible targets.
:func:`presolve` normalizes all of that once, on the sparse matrix form,
in three passes that run until a fixed point:

* **bound tightening** — singleton rows are folded into the variable bounds
  and dropped; integral variables get their bounds rounded inward.
* **fixed-variable elimination** — a variable whose bounds coincide has its
  column folded into the row activity bounds and zeroed, so every remaining
  row gets sparser (the variable itself stays in the export with a pinned
  bound, which keeps solution decoding index-stable).
* **feasibility screening** — crossed variable bounds and constant rows whose
  activity window excludes zero are reported as infeasible immediately,
  without ever invoking an LP.
* **big-M tightening** — after the fixed point, coefficients of binary
  variables in one-sided rows are shrunk to their max-activity values and
  rows whose largest coefficient still dwarfs the rest of the matrix are
  rescaled to unit magnitude (see :func:`_tighten_big_m` /
  :func:`_equilibrate_rows`).  This is the root-cause fix for the HiGHS
  "Status 4" failures on wide-domain indicator encodings: a big-M
  coefficient of ~2e5 amplifies sub-tolerance primal drift past HiGHS's
  absolute 1e-6 feasibility tolerance, making an optimal solve report a
  solve *error*.  With the constants tamed the solver never enters that
  regime, so the backend's presolve-off retry becomes a pure fallback.

The transformation is exact: it never cuts off an integer-feasible point and
never changes the objective value of any feasible assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

#: Slack used when comparing bounds (absorbs division round-off).
_TOLERANCE = 1e-9

#: Rows whose largest absolute coefficient exceeds this are rescaled so that
#: their largest coefficient becomes 1.  The threshold is far above anything a
#: well-scaled encoding produces and far below the big-M constants that push
#: HiGHS past its absolute feasibility tolerance.
_EQUILIBRATION_THRESHOLD = 1e3


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`.

    ``matrices`` has the same keys and variable order as the input, so a
    solution of the presolved problem decodes exactly like one of the
    original.  When ``infeasible`` is set the matrices are unusable and
    ``reason`` explains which reduction proved infeasibility.

    ``bigm_rowmax_before`` / ``bigm_rowmax_after`` hold the per-row largest
    absolute coefficient before and after the big-M passes (index-aligned
    with the surviving rows) — the raw data behind the benchmark's before /
    after big-M histogram.
    """

    matrices: dict[str, object]
    infeasible: bool = False
    reason: str = ""
    stats: dict[str, float] = field(default_factory=dict)
    bigm_rowmax_before: "np.ndarray | None" = None
    bigm_rowmax_after: "np.ndarray | None" = None


def presolve(matrices: dict[str, object], *, max_passes: int = 4) -> PresolveResult:
    """Tighten bounds, eliminate fixed variables, and screen feasibility.

    ``matrices`` is the dict produced by ``Model.to_matrices()`` (sparse
    ``A``).  The input is not mutated.
    """
    A = matrices["A"].tocsr(copy=True)
    A.eliminate_zeros()
    lb_con = np.array(matrices["lb_con"], dtype=float)
    ub_con = np.array(matrices["ub_con"], dtype=float)
    lb_var = np.array(matrices["lb_var"], dtype=float)
    ub_var = np.array(matrices["ub_var"], dtype=float)
    integrality = np.asarray(matrices["integrality"])
    c = np.asarray(matrices["c"], dtype=float)
    n = len(c)
    bigm_rows = matrices.get("bigm_rows")
    if bigm_rows is not None:
        bigm_rows = np.array(bigm_rows, dtype=float)

    stats: dict[str, float] = {
        "rows_before": float(A.shape[0]),
        "singleton_rows": 0.0,
        "fixed_variables": 0.0,
        "bounds_tightened": 0.0,
        "passes": 0.0,
        "bigm_tightened": 0.0,
        "bigm_scaled_rows": 0.0,
        "bigm_redundant_rows": 0.0,
    }
    if bigm_rows is not None:
        declared = bigm_rows[np.isfinite(bigm_rows)]
        stats["bigm_declared_rows"] = float(declared.size)
        if declared.size:
            stats["bigm_declared_max"] = float(np.max(np.abs(declared)))
    rowmax_pair: list["np.ndarray | None"] = [None, None]

    def _result(infeasible: bool = False, reason: str = "") -> PresolveResult:
        stats["rows_after"] = float(A.shape[0])
        out = {
            "c": c,
            "A": A,
            "lb_con": lb_con,
            "ub_con": ub_con,
            "lb_var": lb_var,
            "ub_var": ub_var,
            "integrality": integrality,
        }
        if bigm_rows is not None:
            out["bigm_rows"] = bigm_rows
        return PresolveResult(
            out,
            infeasible=infeasible,
            reason=reason,
            stats=stats,
            bigm_rowmax_before=rowmax_pair[0],
            bigm_rowmax_after=rowmax_pair[1],
        )

    integral = integrality == 1
    tightened = _round_integral_bounds(lb_var, ub_var, integral)
    stats["bounds_tightened"] += tightened
    if np.any(lb_var > ub_var + _TOLERANCE):
        return _result(True, "variable bounds cross after integral rounding")

    folded = np.zeros(n, dtype=bool)
    for pass_index in range(max_passes):
        stats["passes"] = float(pass_index + 1)
        changed = False

        row_nnz = np.diff(A.indptr)

        # Constant rows: the (possibly shifted) activity window must contain 0.
        empty = row_nnz == 0
        if np.any(empty & ((lb_con > _TOLERANCE) | (ub_con < -_TOLERANCE))):
            return _result(True, "constant constraint is violated (e.g. 0 == 1)")

        # Singleton rows become variable bounds.
        for row in np.flatnonzero(row_nnz == 1):
            pointer = A.indptr[row]
            column = int(A.indices[pointer])
            coefficient = float(A.data[pointer])
            lower, upper = lb_con[row], ub_con[row]
            if coefficient > 0:
                implied_lower, implied_upper = lower / coefficient, upper / coefficient
            else:
                implied_lower, implied_upper = upper / coefficient, lower / coefficient
            if implied_lower > lb_var[column] + _TOLERANCE:
                lb_var[column] = implied_lower
                stats["bounds_tightened"] += 1
                changed = True
            if implied_upper < ub_var[column] - _TOLERANCE:
                ub_var[column] = implied_upper
                stats["bounds_tightened"] += 1
                changed = True
            stats["singleton_rows"] += 1

        stats["bounds_tightened"] += _round_integral_bounds(lb_var, ub_var, integral)
        if np.any(lb_var > ub_var + _TOLERANCE):
            return _result(True, "variable bounds cross after singleton tightening")

        # Drop rows that are now fully absorbed into the bounds.
        keep_rows = row_nnz > 1
        if not keep_rows.all():
            A = A[keep_rows]
            lb_con = lb_con[keep_rows]
            ub_con = ub_con[keep_rows]
            if bigm_rows is not None:
                bigm_rows = bigm_rows[keep_rows]
            changed = True

        # Fold fixed variables out of the remaining rows.
        fixed = (ub_var - lb_var <= _TOLERANCE) & ~folded
        if fixed.any():
            values = np.where(fixed, (lb_var + ub_var) / 2.0, 0.0)
            contribution = A @ values
            # -inf/+inf row bounds survive the shift unchanged.
            lb_con = lb_con - contribution
            ub_con = ub_con - contribution
            keep_columns = sparse.diags((~fixed).astype(float))
            A = (A @ keep_columns).tocsr()
            A.eliminate_zeros()
            folded |= fixed
            stats["fixed_variables"] = float(folded.sum())
            changed = True

        if not changed:
            break

    # Big-M passes run once, on the fixed point: coefficient tightening uses
    # the final (tightest) variable bounds, then equilibration rescales any
    # row the tightening could not bring down to a tame magnitude.
    A = A.tocsr()
    rowmax_pair[0] = _row_max_abs(A)
    tightened, redundant = _tighten_big_m(A, lb_con, ub_con, lb_var, ub_var, integral)
    stats["bigm_tightened"] = float(tightened)
    stats["bigm_redundant_rows"] = float(redundant)
    stats["bigm_scaled_rows"] = float(_equilibrate_rows(A, lb_con, ub_con))
    A.eliminate_zeros()
    rowmax_pair[1] = _row_max_abs(A)

    return _result()


def _row_max_abs(A: "sparse.csr_matrix") -> np.ndarray:
    """Largest absolute coefficient of each row (0 for empty rows)."""
    m = A.shape[0]
    row_max = np.zeros(m)
    if A.nnz:
        row_index = np.repeat(np.arange(m), np.diff(A.indptr))
        np.maximum.at(row_max, row_index, np.abs(A.data))
    return row_max


def _row_activity_bounds(
    A: "sparse.csr_matrix", lb_var: np.ndarray, ub_var: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row activity bounds ``[minact, maxact]`` over the variable box.

    Rows touching an unbounded variable on the relevant side get an infinite
    activity bound, which makes every tightening test on them a no-op.
    """
    positive = A.copy()
    positive.data = np.maximum(positive.data, 0.0)
    negative = A.copy()
    negative.data = np.minimum(negative.data, 0.0)
    lb_finite = np.where(np.isfinite(lb_var), lb_var, 0.0)
    ub_finite = np.where(np.isfinite(ub_var), ub_var, 0.0)
    maxact = positive @ ub_finite + negative @ lb_finite
    minact = positive @ lb_finite + negative @ ub_finite
    ub_open = (~np.isfinite(ub_var)).astype(float)
    lb_open = (~np.isfinite(lb_var)).astype(float)
    max_open = (positive @ ub_open) + (-negative @ lb_open)
    min_open = (positive @ lb_open) + (-negative @ ub_open)
    maxact = np.where(max_open > 0, np.inf, maxact)
    minact = np.where(min_open > 0, -np.inf, minact)
    return minact, maxact


def _tighten_big_m(
    A: "sparse.csr_matrix",
    lb_con: np.ndarray,
    ub_con: np.ndarray,
    lb_var: np.ndarray,
    ub_var: np.ndarray,
    integral: np.ndarray,
) -> tuple[int, int]:
    """Shrink binary coefficients in one-sided rows to their max-activity size.

    Classic MIP coefficient tightening, applied in place: for a row
    ``a^T x <= u`` and a binary ``x_j`` with ``a_j > 0``, when the row cannot
    be tight with ``x_j = 0`` (``maxact - a_j < u``) both the coefficient and
    the right-hand side shrink by ``u - (maxact - a_j)``; for ``a_j < 0``,
    when the row is slack with ``x_j = 1`` the coefficient relaxes toward 0.
    ``>=`` rows go through the same rules with the row negated.  The integer
    feasible set is unchanged (the constraint is equivalent at ``x_j`` in
    {0, 1}); only the LP relaxation tightens.  Rows that can never bind are
    dropped to an unbounded row.  Returns ``(coefficients_changed,
    rows_made_redundant)``.
    """
    m = A.shape[0]
    if m == 0 or A.nnz == 0:
        return 0, 0
    # The rules below assume the full {0, 1} box; partially-fixed binaries
    # (possible when max_passes cuts the fold loop short) are left alone.
    binary = (
        (integral == 1)
        & (np.abs(lb_var) <= _TOLERANCE)
        & (np.abs(ub_var - 1.0) <= _TOLERANCE)
    )
    if not binary.any():
        return 0, 0
    minact, maxact = _row_activity_bounds(A, lb_var, ub_var)
    finite_ub = np.isfinite(ub_con)
    finite_lb = np.isfinite(lb_con)
    tightened = 0
    redundant = 0
    for sign, candidates, activity in (
        (1.0, np.flatnonzero(finite_ub & ~finite_lb), maxact),
        (-1.0, np.flatnonzero(finite_lb & ~finite_ub), -minact),
    ):
        for row in candidates:
            begin, end = A.indptr[row], A.indptr[row + 1]
            if end - begin == 0:
                continue
            act = float(activity[row])
            if not np.isfinite(act):
                continue
            # Work on the row as sign * a^T x <= u.
            u = float(ub_con[row]) if sign > 0 else -float(lb_con[row])
            if act <= u + _TOLERANCE:
                # The row can never bind: it is redundant, not a constraint.
                lb_con[row], ub_con[row] = -np.inf, np.inf
                redundant += 1
                continue
            for pointer in range(begin, end):
                column = int(A.indices[pointer])
                if not binary[column]:
                    continue
                coefficient = sign * float(A.data[pointer])
                if coefficient > _TOLERANCE:
                    without = act - coefficient  # activity bound at x_j = 0
                    if without < u - _TOLERANCE:
                        # The row can never bind with x_j = 0, so coefficient
                        # and rhs both shrink by the slack u - without; the
                        # x_j = 1 face is untouched.
                        new_coefficient = act - u  # = coefficient - slack > 0
                        A.data[pointer] = sign * new_coefficient
                        u = without
                        act = without + new_coefficient
                        tightened += 1
                elif coefficient < -_TOLERANCE:
                    if act + coefficient < u - _TOLERANCE:
                        # Slack even at x_j = 1: relax the coefficient to the
                        # largest value that keeps x_j = 1 redundant.  The
                        # activity bound is unchanged (a negative binary
                        # coefficient contributes 0 to it either way).
                        new_coefficient = min(u - act, 0.0)
                        A.data[pointer] = sign * new_coefficient
                        tightened += 1
            if sign > 0:
                ub_con[row] = u
            else:
                lb_con[row] = -u
    return tightened, redundant


def _equilibrate_rows(
    A: "sparse.csr_matrix", lb_con: np.ndarray, ub_con: np.ndarray
) -> int:
    """Rescale rows whose largest coefficient exceeds the big-M threshold.

    Row scaling is an exact reformulation (both sides divide by the same
    positive factor) but it is what actually keeps HiGHS healthy: residuals
    that were amplified to just past the absolute feasibility tolerance by a
    ~2e5 coefficient shrink with the row, so an optimal solve no longer gets
    reported as a solve error.  Returns the number of rows rescaled.
    """
    if A.shape[0] == 0 or A.nnz == 0:
        return 0
    row_max = _row_max_abs(A)
    scaled = row_max > _EQUILIBRATION_THRESHOLD
    if not scaled.any():
        return 0
    factor = np.where(scaled, 1.0 / np.maximum(row_max, 1.0), 1.0)
    row_index = np.repeat(np.arange(A.shape[0]), np.diff(A.indptr))
    A.data *= factor[row_index]
    lb_con *= factor  # ±inf bounds survive the positive scaling unchanged
    ub_con *= factor
    return int(np.count_nonzero(scaled))


def _round_integral_bounds(
    lb_var: np.ndarray, ub_var: np.ndarray, integral: np.ndarray
) -> int:
    """Round integral-variable bounds inward, in place; return the change count."""
    if not integral.any():
        return 0
    new_lower = np.where(integral, np.ceil(lb_var - _TOLERANCE), lb_var)
    new_upper = np.where(integral, np.floor(ub_var + _TOLERANCE), ub_var)
    changed = int(np.count_nonzero(new_lower != lb_var) + np.count_nonzero(new_upper != ub_var))
    lb_var[:] = new_lower
    ub_var[:] = new_upper
    return changed
