"""Unit tests for the qfix logger hierarchy and its trace correlation."""

import io
import json
import logging

import pytest

from repro.obs import TraceStore, Tracer, configure_logging, get_logger, reset_tracing


@pytest.fixture(autouse=True)
def _clean_logging_state():
    reset_tracing()
    yield
    reset_tracing()
    root = get_logger()
    for handler in list(root.handlers):
        root.removeHandler(handler)


class TestHierarchy:
    def test_named_loggers_live_under_the_qfix_root(self):
        assert get_logger().name == "qfix"
        assert get_logger("server").name == "qfix.server"
        assert get_logger("server").parent is get_logger()

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        assert len(get_logger().handlers) == 1
        assert get_logger().propagate is False

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("verbose")

    def test_level_threshold_applies(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("server").info("quiet")
        get_logger("server").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()


class TestFormats:
    def test_json_records_are_parseable_lines(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        get_logger("server").info("served %d requests", 3)
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "info"
        assert record["logger"] == "qfix.server"
        assert record["message"] == "served 3 requests"
        assert "trace_id" not in record  # no active trace

    def test_json_records_carry_the_active_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        tracer = Tracer(sample_rate=1.0, store=TraceStore())
        with tracer.trace("root") as root:
            get_logger("server").info("inside")
        record = json.loads(stream.getvalue().strip())
        assert record["trace_id"] == root.trace_id

    def test_text_format_appends_trace_id_only_inside_a_trace(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("server").info("outside")
        tracer = Tracer(sample_rate=1.0, store=TraceStore())
        with tracer.trace("root") as root:
            get_logger("server").info("inside")
        outside_line, inside_line = stream.getvalue().strip().splitlines()
        assert "trace=" not in outside_line
        assert f"trace={root.trace_id}" in inside_line

    def test_presets_on_the_record_win_over_the_filter(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        get_logger("server").error("boom", extra={"trace_id": "preset-id"})
        record = json.loads(stream.getvalue().strip())
        assert record["trace_id"] == "preset-id"

    def test_exceptions_are_rendered_in_json(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        try:
            raise ValueError("bad")
        except ValueError:
            get_logger().exception("failed")
        record = json.loads(stream.getvalue().strip())
        assert "ValueError: bad" in record["exc_info"]
