"""Structured logging for the serving path: the ``qfix.`` logger hierarchy.

One convention, two renderings:

* every server/service/executor module logs through ``get_logger("server")``
  etc. — children of the ``qfix`` root logger, so one :func:`configure_logging`
  call governs level and format for the whole serving path;
* the default format is a classic one-liner; ``json_mode=True`` switches to
  one JSON object per line, machine-shippable as-is.

Both renderings carry the active ``trace_id`` (from :mod:`repro.obs.trace`'s
thread-local context) whenever the log call happens inside a sampled trace,
so a slow-trace flight-recorder entry and its log lines correlate by id.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

from repro.obs.trace import current_trace_id

ROOT_LOGGER_NAME = "qfix"

#: Accepted ``--log-level`` values, mapped onto the stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``qfix.`` hierarchy (``get_logger("server")`` →
    ``qfix.server``); the bare root with no argument."""
    return logging.getLogger(
        f"{ROOT_LOGGER_NAME}.{name}" if name else ROOT_LOGGER_NAME
    )


class _TraceContextFilter(logging.Filter):
    """Stamp each record with the active trace id (empty outside a trace)."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not getattr(record, "trace_id", ""):
            record.trace_id = current_trace_id() or ""
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, trace_id."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", "")
        if trace_id:
            payload["trace_id"] = trace_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """The human one-liner; appends ``trace=<id>`` inside a trace."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        trace_id = getattr(record, "trace_id", "")
        return f"{line} trace={trace_id}" if trace_id else line


def configure_logging(
    level: str = "info",
    *,
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``qfix`` root logger; idempotent (handlers replaced).

    ``propagate`` is disabled so an application embedding the package with
    its own root-logger handlers never sees duplicate lines.
    """
    try:
        resolved = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LOG_LEVELS)}"
        ) from None
    root = get_logger()
    root.setLevel(resolved)
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    handler.addFilter(_TraceContextFilter())
    root.addHandler(handler)
    return root
