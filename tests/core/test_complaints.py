"""Tests for repro.core.complaints."""

import pytest

from repro.core.complaints import Complaint, ComplaintKind, ComplaintSet
from repro.db.database import Database
from repro.db.schema import Schema
from repro.exceptions import ReproError


@pytest.fixture()
def states():
    schema = Schema.build("t", ["a", "b"], upper=100)
    dirty = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}, {"a": 5, "b": 6}])
    clean = Database(schema, [{"a": 1, "b": 2}, {"a": 3, "b": 40}, {"a": 5, "b": 6}])
    return dirty, clean


class TestComplaint:
    def test_kinds(self):
        assert Complaint(0, {"a": 1.0}).kind is ComplaintKind.VALUE
        assert Complaint(0, None).kind is ComplaintKind.REMOVE
        assert Complaint(0, {"a": 1.0}, exists_in_dirty=False).kind is ComplaintKind.INSERT

    def test_target_values(self):
        complaint = Complaint(0, {"a": 1.0})
        assert complaint.target_values() == {"a": 1.0}
        with pytest.raises(ReproError):
            Complaint(0, None).target_values()


class TestComplaintSet:
    def test_duplicate_rid_rejected(self):
        complaints = ComplaintSet([Complaint(0, {"a": 1.0})])
        with pytest.raises(ReproError):
            complaints.add(Complaint(0, {"a": 2.0}))

    def test_from_states(self, states):
        dirty, clean = states
        complaints = ComplaintSet.from_states(dirty, clean)
        assert len(complaints) == 1
        assert complaints.rids == (1,)
        assert complaints.get(1).target_values()["b"] == 40
        assert 1 in complaints and 0 not in complaints

    def test_complaint_attributes(self, states):
        dirty, clean = states
        complaints = ComplaintSet.from_states(dirty, clean)
        assert complaints.complaint_attributes(dirty) == {"b"}

    def test_removal_and_insert_complaints_cover_all_attributes(self, states):
        dirty, _ = states
        complaints = ComplaintSet([Complaint(0, None)])
        assert complaints.complaint_attributes(dirty) == {"a", "b"}

    def test_sample_keeps_at_least_minimum(self, states):
        dirty, clean = states
        clean.get(0)["a"] = 50
        clean.get(2)["a"] = 70
        complaints = ComplaintSet.from_states(dirty, clean)
        assert len(complaints) == 3
        sampled = complaints.sample(0.3, rng=1)
        assert len(sampled) == 1
        assert complaints.sample(0.0, rng=1, minimum=2).rids is not None
        with pytest.raises(ReproError):
            complaints.sample(1.5)

    def test_sample_of_empty_set(self):
        assert len(ComplaintSet().sample(0.5, rng=0)) == 0

    def test_is_empty(self):
        assert ComplaintSet().is_empty()
        assert not ComplaintSet([Complaint(0, {"a": 1.0})]).is_empty()
