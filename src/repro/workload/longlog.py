"""Long-history workloads with seeded, disjoint tuple clusters.

The decompose-and-conquer pipeline (``QFixConfig.decompose``) wins exactly
when a long query history splits into independent pieces: log compaction can
drop the queries that provably cannot reach the complaint set, and component
splitting can solve what remains as separate small MILPs.  This generator
produces histories built to have that structure *by construction*, so the
harness and benchmarks can measure the pipeline against a known ground truth:

* the ``n_tuples`` initial rows are partitioned into ``n_clusters`` disjoint
  clusters, and cluster ``c`` owns its own attribute ``a{c+1}``;
* every query is a point UPDATE ``SET a{c+1} = ? WHERE id = <const>`` whose
  target tuple lies inside cluster ``c = index % n_clusters``;
* WHERE keys are :class:`~repro.queries.expressions.Const`, not
  :class:`~repro.queries.expressions.Param` — predicates fold to constants at
  encoding time, so the only MILP variables are the SET parameters and the
  per-tuple cell chains, and tuples in different clusters never share a
  variable.

A corruption therefore perturbs one cluster only, complaints land in the
corrupted clusters, compaction keeps only those clusters' queries (the others
write attributes outside the encoded set), and the residual model decomposes
into one component per complaint tuple.  Round-robin cluster assignment means
``early`` / ``late`` / ``spread`` corruption placement all land consecutive
corruptions in *distinct* clusters, which is what the differential cells of
the harness need (complaints spanning two components).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.db.database import Database
from repro.db.schema import AttributeSpec, Schema
from repro.exceptions import ReproError
from repro.queries.expressions import Attr, Const, Param
from repro.queries.log import QueryLog
from repro.queries.predicates import Comparison
from repro.queries.query import Query, UpdateQuery
from repro.workload.synthetic import Workload


@dataclass(frozen=True)
class LongLogConfig:
    """Parameters of the long-history workload.

    ``n_clusters`` also fixes the number of non-key attributes: cluster ``c``
    writes only ``a{c+1}``, so attribute-level slicing and log compaction see
    each cluster as its own write set.
    """

    n_tuples: int = 64
    n_queries: int = 1000
    n_clusters: int = 8
    domain_max: int = 200
    seed: int = 0

    def with_overrides(self, **changes: object) -> "LongLogConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ReproError("n_clusters must be at least 1")
        if self.n_tuples < self.n_clusters:
            raise ReproError(
                f"n_tuples ({self.n_tuples}) must cover every cluster "
                f"({self.n_clusters})"
            )


class LongLogWorkloadGenerator:
    """Deterministic (seeded) generator for clustered long-history workloads."""

    def __init__(self, config: LongLogConfig | None = None) -> None:
        self.config = config if config is not None else LongLogConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # -- public API ---------------------------------------------------------------

    def generate(self) -> Workload:
        """Generate the schema, the initial database, and the query log."""
        schema = self.build_schema()
        initial = self.build_initial_database(schema)
        log = self.build_log()
        workload = Workload(schema, initial, log)
        workload.metadata.update(
            family="long-log",
            n_clusters=self.config.n_clusters,
        )
        return workload

    def build_schema(self) -> Schema:
        """Key attribute ``id`` plus one attribute per cluster."""
        config = self.config
        upper = float(config.domain_max)
        specs = [
            AttributeSpec(
                "id", lower=0.0, upper=float(config.n_tuples + 10), key=True, integral=True
            )
        ]
        for cluster in range(config.n_clusters):
            specs.append(
                AttributeSpec(f"a{cluster + 1}", lower=0.0, upper=upper, integral=True)
            )
        return Schema("longlog", tuple(specs))

    def build_initial_database(self, schema: Schema) -> Database:
        """Sequential ids, uniform attribute values."""
        config = self.config
        rows = []
        for index in range(config.n_tuples):
            values = {"id": float(index)}
            for cluster in range(config.n_clusters):
                values[f"a{cluster + 1}"] = float(
                    self._rng.integers(0, config.domain_max + 1)
                )
            rows.append(values)
        return Database(schema, rows)

    def cluster_tuples(self, cluster: int) -> tuple[int, ...]:
        """The tuple ids owned by ``cluster`` (a contiguous, disjoint slab)."""
        config = self.config
        size = config.n_tuples // config.n_clusters
        start = cluster * size
        # The last cluster absorbs the remainder so every tuple is owned.
        end = config.n_tuples if cluster == config.n_clusters - 1 else start + size
        return tuple(range(start, end))

    def build_log(self) -> QueryLog:
        """``n_queries`` point UPDATEs, round-robin over the clusters."""
        config = self.config
        queries: list[Query] = []
        for index in range(config.n_queries):
            cluster = index % config.n_clusters
            owned = self.cluster_tuples(cluster)
            target = int(owned[int(self._rng.integers(0, len(owned)))])
            label = f"q{index + 1}"
            value = float(self._rng.integers(0, config.domain_max + 1))
            queries.append(
                UpdateQuery(
                    "longlog",
                    {f"a{cluster + 1}": Param(f"{label}_set", value)},
                    Comparison(Attr("id"), "=", Const(float(target))),
                    label=label,
                )
            )
        return QueryLog(queries)

    # -- corruption ---------------------------------------------------------------

    def corrupt_query(
        self, query: Query, rng: "np.random.Generator | None" = None
    ) -> tuple[Query, dict[str, float]]:
        """Re-draw the query's SET constant from the value domain.

        The WHERE key is a folded constant, so the SET parameter is the only
        thing a corruption *can* perturb — which keeps the blast radius inside
        the query's own cluster, the property the family exists to provide.
        """
        generator = rng if rng is not None else self._rng
        params = query.params()
        if not params:
            return query, {}
        new_values: dict[str, float] = {}
        for name, value in params.items():
            drawn = float(generator.integers(0, self.config.domain_max + 1))
            if abs(drawn - value) < 1e-9:
                drawn = float((int(value) + 1 + int(generator.integers(1, max(2, self.config.domain_max // 2)))) % (self.config.domain_max + 1))
            new_values[name] = drawn
        return query.with_params(new_values), new_values


__all__ = ["LongLogConfig", "LongLogWorkloadGenerator"]
