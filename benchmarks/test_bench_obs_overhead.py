"""Tracing overhead benchmark: what does sampling-off instrumentation cost?

Every hot tier (engine, solver backends, encoders, executors) now calls
``obs.span(...)`` unconditionally; when nothing is sampled that call is one
thread-local read returning the no-op singleton.  This benchmark pins that
claim two ways:

* **primitive cost** — a tight loop over the unsampled instrumentation
  points, asserting the per-call cost stays in the sub-microsecond class
  (gated very leniently for noisy CI runners);
* **end-to-end cost** — the same diagnosis batch solved with tracing off and
  with tracing fully on, writing both timings to
  ``BENCH_obs_overhead.json`` (override with ``BENCH_OBS_OVERHEAD_OUT``).
  The off-vs-on comparison is archived, not gated: a 100%-sampled run is
  *allowed* to cost more — the product claim is only that *off* costs
  nothing, which the primitive gate covers.

Timings use min-of-repeats: the minimum is the least noisy location
statistic for a cold-cache-free loop on a shared runner.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.common import nonvacuous_scenarios, synthetic_scenario
from repro.obs import configure_tracing, record_span, reset_tracing, span
from repro.service.engine import DiagnosisEngine
from repro.service.types import DiagnosisRequest

OUTPUT_PATH = os.environ.get("BENCH_OBS_OVERHEAD_OUT", "BENCH_obs_overhead.json")

#: Lenient per-call ceiling for the unsampled primitives (seconds).  The real
#: cost is tens of nanoseconds; the gate only has to catch an accidental
#: allocation or lock on the off path, not measure it precisely.
UNSAMPLED_CALL_CEILING = 20e-6

PRIMITIVE_LOOPS = 20_000
REPEATS = 5


def _min_of_repeats(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _requests() -> list[DiagnosisRequest]:
    scenarios = nonvacuous_scenarios(
        4,
        lambda candidate: synthetic_scenario(
            n_tuples=16 + 2 * (candidate % 3),
            n_queries=5 + candidate % 3,
            corruption_indices=[1 + candidate % 3],
            seed=candidate,
        ),
    )
    return [
        DiagnosisRequest(
            initial=scenario.initial,
            log=scenario.corrupted_log,
            complaints=scenario.complaints,
            final=scenario.dirty,
            request_id=f"obs-bench-{index}",
        )
        for index, scenario in enumerate(scenarios)
    ]


def test_unsampled_primitives_cost_nothing():
    """The off-path instrumentation points stay in the noop fast lane."""
    reset_tracing()
    try:

        def loop():
            for _ in range(PRIMITIVE_LOOPS):
                with span("engine.diagnose", queries=10):
                    pass
                record_span("wal.append", seconds=0.001)

        best = _min_of_repeats(loop)
        per_call = best / (PRIMITIVE_LOOPS * 2)
        assert per_call < UNSAMPLED_CALL_CEILING, (
            f"unsampled instrumentation costs {per_call * 1e6:.2f}us per call "
            f"(ceiling {UNSAMPLED_CALL_CEILING * 1e6:.0f}us) — "
            "something on the off path allocates or locks"
        )
    finally:
        reset_tracing()


def test_end_to_end_overhead_is_archived():
    """Same batch, tracing off vs fully on; archived for trend tracking."""
    requests = _requests()

    def run_batch() -> float:
        engine = DiagnosisEngine(max_workers=1)
        try:
            start = time.perf_counter()
            responses = engine.diagnose_batch(requests)
            elapsed = time.perf_counter() - start
        finally:
            engine.close()
        assert all(response.ok for response in responses)
        return elapsed

    reset_tracing()
    try:
        run_batch()  # warm the caches outside the timed runs
        off = min(run_batch() for _ in range(3))
        configure_tracing(1.0, capacity=64)
        on = min(run_batch() for _ in range(3))
    finally:
        reset_tracing()

    report = {
        "requests": len(requests),
        "tracing_off_seconds": round(off, 6),
        "tracing_on_seconds": round(on, 6),
        "sampled_overhead_pct": round((on - off) / off * 100.0, 2) if off else None,
    }
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    # No gate on the sampled run: 100% sampling may legitimately cost a few
    # percent.  The artifact is the deliverable.
    assert off > 0 and on > 0
