"""Atomic, generation-numbered snapshot files that compact the WAL.

A shard directory holds at most a handful of files::

    shard-00/
        snapshot-0000000003.json    # full live-session state as of rotation 3
        wal-0000000003.log          # operations journaled since that snapshot

Generation ``g`` means "the state in ``snapshot-g`` plus the operations in
``wal-g``".  Generation 0 has no snapshot file — it is the empty store — so a
fresh shard is just ``wal-0000000000.log``.

Snapshots are written with the classic atomic-publish sequence: serialize to
``snapshot-g.json.tmp``, flush + fsync, ``os.replace`` onto the final name,
fsync the directory.  A reader therefore never observes a half-written
snapshot under the real name; a crash mid-write leaves only a ``.tmp`` file,
which recovery ignores (and cleans up).

Compaction rotates *forward*: the journal first opens ``wal-(g+1)`` and
routes new appends there, then collects live state, then publishes
``snapshot-(g+1)``, and only then deletes generation ``g``.  Every crash
window in that sequence leaves a recoverable disk state — at worst both
generations exist and recovery replays the overlap, which the journal's
per-session operation versions make idempotent (see
:mod:`repro.durability.journal`).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

SNAPSHOT_PREFIX = "snapshot-"
WAL_PREFIX = "wal-"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{10})\.json$")
_WAL_RE = re.compile(r"^wal-(\d{10})\.log$")


def snapshot_path(directory: str | os.PathLike[str], generation: int) -> str:
    return os.path.join(os.fspath(directory), f"snapshot-{generation:010d}.json")


def wal_path(directory: str | os.PathLike[str], generation: int) -> str:
    return os.path.join(os.fspath(directory), f"wal-{generation:010d}.log")


def _fsync_directory(directory: str) -> None:
    """Make a rename/create durable (POSIX); best-effort elsewhere."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some filesystems
        pass
    finally:
        os.close(fd)


def write_snapshot(
    directory: str | os.PathLike[str], generation: int, payload: dict[str, Any]
) -> str:
    """Atomically publish ``payload`` as the snapshot for ``generation``."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    final = snapshot_path(directory, generation)
    staging = final + ".tmp"
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    with open(staging, "w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, final)
    _fsync_directory(directory)
    return final


def load_snapshot(
    directory: str | os.PathLike[str], generation: int
) -> dict[str, Any] | None:
    """Load one generation's snapshot; ``None`` when missing or unreadable."""
    try:
        with open(snapshot_path(directory, generation), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError, OSError):
        return None
    return payload if isinstance(payload, dict) else None


def list_generations(
    directory: str | os.PathLike[str],
) -> tuple[list[int], list[int]]:
    """``(snapshot_generations, wal_generations)`` present on disk, sorted."""
    directory = os.fspath(directory)
    snapshots: list[int] = []
    wals: list[int] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return [], []
    for name in names:
        found = _SNAPSHOT_RE.match(name)
        if found:
            snapshots.append(int(found.group(1)))
            continue
        found = _WAL_RE.match(name)
        if found:
            wals.append(int(found.group(1)))
    return sorted(snapshots), sorted(wals)


def latest_snapshot(
    directory: str | os.PathLike[str],
) -> tuple[int, dict[str, Any] | None]:
    """The newest *loadable* snapshot: ``(generation, payload)``.

    Walks generations newest-first so one unreadable file (it should not
    happen — publication is atomic — but disks lie) degrades to the previous
    snapshot instead of failing recovery.  ``(0, None)`` means "start from
    the empty store".
    """
    snapshots, _ = list_generations(directory)
    for generation in reversed(snapshots):
        payload = load_snapshot(directory, generation)
        if payload is not None:
            return generation, payload
    return 0, None


def prune_below(directory: str | os.PathLike[str], generation: int) -> list[str]:
    """Delete snapshot/WAL files of generations below ``generation``.

    Also sweeps orphaned ``.tmp`` staging files (a crash mid-publish).  Best
    effort: an undeletable file is skipped — stale generations cost disk, not
    correctness, because recovery always prefers the newest snapshot.
    """
    directory = os.fspath(directory)
    removed: list[str] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return removed
    for name in names:
        doomed = False
        if name.endswith(".tmp"):
            doomed = True
        else:
            found = _SNAPSHOT_RE.match(name) or _WAL_RE.match(name)
            if found and int(found.group(1)) < generation:
                doomed = True
        if doomed:
            path = os.path.join(directory, name)
            try:
                os.remove(path)
                removed.append(path)
            except OSError:  # pragma: no cover - permissions/races
                continue
    if removed:
        _fsync_directory(directory)
    return removed
