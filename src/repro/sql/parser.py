"""Recursive-descent parser for the supported DML subset.

The parser turns SQL text into :mod:`repro.queries` objects.  Numeric literals
become repairable parameters (:class:`~repro.queries.expressions.Param`) by
default, because QFix treats every constant in a logged query as a candidate
for repair; pass ``parameterize=False`` to produce plain constants instead.

Grammar (informal)::

    statement   := update | insert | delete
    update      := UPDATE ident SET assignment ("," assignment)* [WHERE predicate]
    assignment  := ident "=" expression
    insert      := INSERT INTO ident ["(" ident ("," ident)* ")"]
                   VALUES "(" expression ("," expression)* ")"
    delete      := DELETE FROM ident [WHERE predicate]
    predicate   := disjunction
    disjunction := conjunction (OR conjunction)*
    conjunction := condition (AND condition)*
    condition   := "(" predicate ")" | TRUE | FALSE | comparison | between
    comparison  := expression op expression          (op in =, <>, !=, <, >, <=, >=)
    between     := expression BETWEEN expression AND expression
    expression  := term (("+" | "-") term)*
    term        := factor ("*" factor)*
    factor      := number | ident | "(" expression ")" | "-" factor
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import SQLSyntaxError
from repro.queries.expressions import (
    Attr,
    BinOp,
    Const,
    Expr,
    Param,
    contains_attribute,
    demote_params,
)
from repro.queries.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.queries.query import DeleteQuery, InsertQuery, Query, UpdateQuery
from repro.sql.tokenizer import Token, TokenType, tokenize


class SQLParser:
    """Parser over a token stream.

    Parameters
    ----------
    tokens:
        Token list produced by :func:`repro.sql.tokenizer.tokenize`.
    parameterize:
        When true (default), numeric literals become named parameters.
    label:
        Label given to the parsed query; also used as the prefix for
        auto-generated parameter names.
    insert_columns:
        Column names to use for ``INSERT INTO t VALUES (...)`` statements that
        omit the column list.
    """

    def __init__(
        self,
        tokens: Sequence[Token],
        *,
        parameterize: bool = True,
        label: str = "q",
        insert_columns: Sequence[str] | None = None,
    ) -> None:
        self._tokens = list(tokens)
        self._index = 0
        self._parameterize = parameterize
        self._label = label
        self._param_counter = 0
        self._insert_columns = list(insert_columns) if insert_columns else None

    # -- token helpers ----------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType, text: str | None = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (
            text is not None and token.text.upper() != text.upper()
        ):
            expectation = text or token_type.value
            raise SQLSyntaxError(
                f"expected {expectation}, found {token.text!r}", position=token.position
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected keyword {word}, found {token.text!r}", position=token.position
            )
        return self._advance()

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _literal(self, value: float) -> Expr:
        if not self._parameterize:
            return Const(value)
        name = f"{self._label}_p{self._param_counter}"
        self._param_counter += 1
        return Param(name, value)

    # -- entry points -----------------------------------------------------------

    def parse_statement(self) -> Query:
        """Parse a single statement (optionally terminated by ``;``)."""
        token = self._peek()
        if token.is_keyword("UPDATE"):
            query = self._parse_update()
        elif token.is_keyword("INSERT"):
            query = self._parse_insert()
        elif token.is_keyword("DELETE"):
            query = self._parse_delete()
        else:
            raise SQLSyntaxError(
                f"expected UPDATE, INSERT, or DELETE, found {token.text!r}",
                position=token.position,
            )
        if self._peek().type is TokenType.SEMICOLON:
            self._advance()
        return query

    def at_end(self) -> bool:
        """Whether the token stream is exhausted."""
        return self._peek().type is TokenType.EOF

    # -- statements -------------------------------------------------------------

    def _parse_update(self) -> UpdateQuery:
        self._expect_keyword("UPDATE")
        table = self._expect(TokenType.IDENTIFIER).text
        self._expect_keyword("SET")
        assignments: list[tuple[str, Expr]] = []
        while True:
            attribute = self._expect(TokenType.IDENTIFIER).text
            self._expect(TokenType.OPERATOR, "=")
            assignments.append((attribute, self._parse_expression()))
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        where: Predicate | None = None
        if self._match_keyword("WHERE"):
            where = self._parse_predicate()
        return UpdateQuery(table, tuple(assignments), where, label=self._label)

    def _parse_insert(self) -> InsertQuery:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect(TokenType.IDENTIFIER).text
        columns: list[str] | None = None
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            columns = [self._expect(TokenType.IDENTIFIER).text]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                columns.append(self._expect(TokenType.IDENTIFIER).text)
            self._expect(TokenType.RPAREN)
        self._expect_keyword("VALUES")
        self._expect(TokenType.LPAREN)
        values = [self._parse_expression()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        if columns is None:
            columns = self._insert_columns
        if columns is None:
            raise SQLSyntaxError(
                "INSERT without a column list requires insert_columns to be supplied"
            )
        if len(columns) != len(values):
            raise SQLSyntaxError(
                f"INSERT provides {len(values)} values for {len(columns)} columns"
            )
        return InsertQuery(table, tuple(zip(columns, values)), label=self._label)

    def _parse_delete(self) -> DeleteQuery:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect(TokenType.IDENTIFIER).text
        where: Predicate | None = None
        if self._match_keyword("WHERE"):
            where = self._parse_predicate()
        return DeleteQuery(table, where, label=self._label)

    # -- predicates -------------------------------------------------------------

    def _parse_predicate(self) -> Predicate:
        return self._parse_disjunction()

    def _parse_disjunction(self) -> Predicate:
        children = [self._parse_conjunction()]
        while self._match_keyword("OR"):
            children.append(self._parse_conjunction())
        if len(children) == 1:
            return children[0]
        return Or(children)

    def _parse_conjunction(self) -> Predicate:
        children = [self._parse_condition()]
        while self._match_keyword("AND"):
            children.append(self._parse_condition())
        if len(children) == 1:
            return children[0]
        return And(children)

    def _parse_condition(self) -> Predicate:
        token = self._peek()
        if token.is_keyword("TRUE"):
            self._advance()
            return TruePredicate()
        if token.is_keyword("FALSE"):
            self._advance()
            return FalsePredicate()
        if token.type is TokenType.LPAREN:
            # Could be a parenthesized predicate or a parenthesized expression
            # starting a comparison; try the predicate interpretation first.
            saved = self._index
            self._advance()
            try:
                inner = self._parse_predicate()
                self._expect(TokenType.RPAREN)
                return inner
            except SQLSyntaxError:
                self._index = saved
        left = self._parse_expression()
        if self._match_keyword("BETWEEN"):
            low = self._parse_expression()
            self._expect_keyword("AND")
            high = self._parse_expression()
            return And((Comparison(left, ">=", low), Comparison(left, "<=", high)))
        op_token = self._expect(TokenType.OPERATOR)
        op = "!=" if op_token.text in ("<>", "!=") else op_token.text
        right = self._parse_expression()
        return Comparison(left, op, right)

    # -- expressions ------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        expr = self._parse_term()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-"):
                self._advance()
                right = self._parse_term()
                expr = BinOp(token.text, expr, right)
                continue
            break
        return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_factor()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text == "*":
                self._advance()
                right = self._parse_factor()
                # A literal multiplying an attribute cannot be a repairable
                # parameter (the product of two undetermined variables is not
                # linear), so demote such literals to plain constants.
                if contains_attribute(expr) and not contains_attribute(right):
                    right = demote_params(right)
                elif contains_attribute(right) and not contains_attribute(expr):
                    expr = demote_params(expr)
                expr = BinOp("*", expr, right)
                continue
            break
        return expr

    def _parse_factor(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return self._literal(float(token.text))
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return Attr(token.text)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return BinOp("*", Const(-1.0), self._parse_factor())
        raise SQLSyntaxError(
            f"expected an expression, found {token.text!r}", position=token.position
        )


def parse_query(
    text: str,
    *,
    parameterize: bool = True,
    label: str = "q",
    insert_columns: Sequence[str] | None = None,
) -> Query:
    """Parse a single SQL statement into a query object."""
    parser = SQLParser(
        tokenize(text),
        parameterize=parameterize,
        label=label,
        insert_columns=insert_columns,
    )
    query = parser.parse_statement()
    if not parser.at_end():
        token = parser._peek()
        raise SQLSyntaxError(
            f"unexpected trailing input {token.text!r}", position=token.position
        )
    return query


def parse_script(
    text: str,
    *,
    parameterize: bool = True,
    label_prefix: str = "q",
    insert_columns: Sequence[str] | None = None,
) -> list[Query]:
    """Parse a ``;``-separated script into a list of query objects.

    Each statement receives the label ``{label_prefix}{i}`` (1-based), which
    also prefixes its auto-generated parameter names.
    """
    tokens = tokenize(text)
    queries: list[Query] = []
    # Split on top-level semicolons so each statement gets its own label.
    start = 0
    statement_index = 1
    for index, token in enumerate(tokens):
        if token.type is TokenType.SEMICOLON or token.type is TokenType.EOF:
            chunk = tokens[start:index]
            start = index + 1
            if not chunk:
                continue
            label = f"{label_prefix}{statement_index}"
            statement_index += 1
            sub_parser = SQLParser(
                list(chunk) + [Token(TokenType.EOF, "", token.position)],
                parameterize=parameterize,
                label=label,
                insert_columns=insert_columns,
            )
            queries.append(sub_parser.parse_statement())
    return queries
