"""The DecTree baseline (Appendix A of the paper).

DecTree repairs a *single* corrupted query in two steps:

1. **WHERE repair** — every tuple of the pre-query state ``D_{i-1}`` is labeled
   ``True`` when its value changes between ``D_{i-1}`` and the *true*
   post-query state ``D*_i`` and ``False`` otherwise; a decision tree learns a
   classifier over the tuple attributes, and the union of its positive rules
   becomes the repaired WHERE clause.
2. **SET repair** — the tuples the repaired WHERE clause selects provide a
   linear system over the SET-clause constants, solved by least squares.

The appendix explains why this approach underperforms: it only handles a
single query, the learned clause structure can differ arbitrarily from the
original query, and highly selective queries give the learner hopelessly
imbalanced data.  Figure 10 quantifies this, and
``experiments/figure10.py`` reproduces it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.decision_tree import DecisionTreeClassifier, Rule
from repro.core.complaints import ComplaintKind, ComplaintSet
from repro.db.database import Database
from repro.db.schema import Schema
from repro.exceptions import RepairError
from repro.queries.expressions import Attr, Const, Expr, Param, collect_params
from repro.queries.log import QueryLog
from repro.queries.predicates import And, Comparison, FalsePredicate, Or, Predicate
from repro.queries.query import Query, UpdateQuery


@dataclass
class DecTreeResult:
    """Outcome of a DecTree repair attempt."""

    original_log: QueryLog
    repaired_log: QueryLog
    feasible: bool
    repaired_index: int
    learned_where: Predicate | None = None
    set_values: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    message: str = ""


class DecTreeRepairer:
    """Decision-tree + linear-system repair of one UPDATE query."""

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
    ) -> None:
        # The defaults mirror C4.5's pruning behaviour (minimum objects per
        # leaf), which is what makes the baseline struggle on the severely
        # imbalanced labelings produced by selective UPDATE queries.
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf

    def repair(
        self,
        schema: Schema,
        initial: Database,
        final: Database,
        log: QueryLog,
        complaints: ComplaintSet,
        *,
        query_index: int | None = None,
    ) -> DecTreeResult:
        """Repair the single UPDATE query at ``query_index`` (default: last query).

        The complaint set is interpreted as in the paper's appendix: the true
        post-query state ``D*`` is obtained by applying the complaint
        transformations to the dirty final state.
        """
        start = time.perf_counter()
        if query_index is None:
            query_index = len(log) - 1
        query = log[query_index]
        assert isinstance(query, Query)
        if not isinstance(query, UpdateQuery):
            raise RepairError("DecTree only repairs UPDATE queries")
        if len(log) != 1 and query_index != len(log) - 1:
            # The appendix restricts DecTree to single-query logs; repairing an
            # inner query would require inverting the suffix, which is
            # generally impossible (surjective updates).  We allow the last
            # query of a longer log because no inversion is needed there.
            raise RepairError(
                "DecTree can only repair the last query of a log (no inversion of later queries)"
            )

        truth_final = _apply_complaints(final, complaints)
        features, labels = self._build_training_data(schema, initial, truth_final)
        classifier = DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
        )
        classifier.fit(features, labels)
        rules = classifier.positive_rules()
        where = _rules_to_predicate(rules, schema)

        set_values = self._solve_set_clause(query, initial, truth_final, where, schema)
        repaired_query = _rebuild_query(query, where, set_values)
        repaired_log = log.with_query(query_index, repaired_query)
        elapsed = time.perf_counter() - start
        return DecTreeResult(
            original_log=log,
            repaired_log=repaired_log,
            feasible=True,
            repaired_index=query_index,
            learned_where=where,
            set_values=set_values,
            total_seconds=elapsed,
        )

    # -- internals ----------------------------------------------------------------------

    def _build_training_data(
        self, schema: Schema, before: Database, truth_after: Database
    ) -> tuple[list[list[float]], list[bool]]:
        attribute_order = schema.attribute_names
        features: list[list[float]] = []
        labels: list[bool] = []
        for row in before.rows():
            truth_row = truth_after.get(row.rid)
            features.append([row.values[name] for name in attribute_order])
            if truth_row is None:
                labels.append(True)  # the tuple disappeared, so it was affected
            else:
                labels.append(not row.same_values(truth_row))
        return features, labels

    def _solve_set_clause(
        self,
        query: UpdateQuery,
        before: Database,
        truth_after: Database,
        where: Predicate,
        schema: Schema,
    ) -> dict[str, float]:
        """Least-squares fit of the SET-clause parameters on the selected tuples."""
        set_values: dict[str, float] = {}
        for attribute, expr in query.set_clause:
            params = collect_params(expr)
            if not params:
                continue
            if len(params) > 1:
                raise RepairError(
                    "DecTree's SET repair supports a single parameter per assignment"
                )
            param_name = next(iter(params))
            samples = []
            for row in before.rows():
                if not where.evaluate(row.values):
                    continue
                truth_row = truth_after.get(row.rid)
                if truth_row is None:
                    continue
                target = truth_row.values[attribute]
                # Solve  expr(row, param) = target  for the parameter; because
                # expressions are affine in the parameter this is a 1-D linear fit.
                base = expr.evaluate(row.values, {param_name: 0.0})
                slope = expr.evaluate(row.values, {param_name: 1.0}) - base
                if abs(slope) < 1e-12:
                    continue
                samples.append((target - base) / slope)
            if samples:
                set_values[param_name] = float(np.mean(samples))
            else:
                set_values[param_name] = float(params[param_name])
        return set_values


def _apply_complaints(final: Database, complaints: ComplaintSet) -> Database:
    """Apply the complaint transformations ``Tc`` to the dirty final state."""
    truth = final.snapshot()
    for complaint in complaints:
        if complaint.kind is ComplaintKind.REMOVE:
            truth.delete(complaint.rid)
            continue
        row = truth.get(complaint.rid)
        target = complaint.target_values()
        if row is None:
            truth.insert(target, rid=complaint.rid)
        else:
            for name, value in target.items():
                row[name] = value
    return truth


def _rules_to_predicate(rules: list[Rule], schema: Schema) -> Predicate:
    """Convert the positive rules of the tree into a WHERE predicate."""
    attribute_order = schema.attribute_names
    disjuncts: list[Predicate] = []
    for rule in rules:
        conjuncts: list[Predicate] = []
        for feature, op, threshold in rule.conditions:
            attribute = attribute_order[feature]
            conjuncts.append(Comparison(Attr(attribute), op, Const(float(threshold))))
        if not conjuncts:
            continue
        disjuncts.append(conjuncts[0] if len(conjuncts) == 1 else And(conjuncts))
    if not disjuncts:
        return FalsePredicate()
    if len(disjuncts) == 1:
        return disjuncts[0]
    return Or(disjuncts)


def _rebuild_query(
    query: UpdateQuery, where: Predicate, set_values: dict[str, float]
) -> UpdateQuery:
    """Assemble the repaired query: learned WHERE clause + fitted SET constants."""
    new_set: list[tuple[str, Expr]] = []
    for attribute, expr in query.set_clause:
        params = collect_params(expr)
        if params:
            name = next(iter(params))
            if name in set_values:
                expr = _replace_param(expr, name, set_values[name])
        new_set.append((attribute, expr))
    return UpdateQuery(query.table, tuple(new_set), where, label=query.label)


def _replace_param(expr: Expr, name: str, value: float) -> Expr:
    from repro.queries.expressions import rebuild_expression

    return rebuild_expression(expr, {name: value})
