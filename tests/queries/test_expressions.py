"""Tests for repro.queries.expressions."""

import pytest

from repro.exceptions import NonLinearExpressionError, QueryModelError
from repro.queries.expressions import (
    Affine,
    Attr,
    BinOp,
    Const,
    Param,
    collect_params,
    contains_attribute,
    demote_params,
    rebuild_expression,
)


class TestBasicExpressions:
    def test_const_evaluation(self):
        assert Const(3.5).evaluate() == 3.5
        assert Const(3).render_sql() == "3"
        assert Const(3.5).render_sql() == "3.5"

    def test_param_evaluation_and_override(self):
        param = Param("p", 4.0)
        assert param.evaluate() == 4.0
        assert param.evaluate(param_overrides={"p": 9.0}) == 9.0
        assert param.with_value(7).value == 7.0

    def test_attr_requires_row(self):
        attr = Attr("a")
        assert attr.evaluate({"a": 2.0}) == 2.0
        with pytest.raises(QueryModelError):
            attr.evaluate({})

    def test_empty_names_rejected(self):
        with pytest.raises(QueryModelError):
            Param("", 1.0)
        with pytest.raises(QueryModelError):
            Attr("")


class TestArithmetic:
    def test_affine_combination(self):
        expr = Attr("a") * 2 + Param("p", 3.0) - 1
        assert expr.evaluate({"a": 5.0}) == 12.0
        assert expr.attributes() == {"a"}
        assert [p.name for p in expr.params()] == ["p"]

    def test_nested_subtraction(self):
        expr = Attr("a") - Attr("b")
        assert expr.evaluate({"a": 10.0, "b": 4.0}) == 6.0

    def test_scalar_multiplication_both_sides(self):
        assert (2 * Attr("a")).evaluate({"a": 3.0}) == 6.0
        assert (Attr("a") * 2).evaluate({"a": 3.0}) == 6.0

    def test_negation(self):
        assert (-Attr("a")).evaluate({"a": 3.0}) == -3.0

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonLinearExpressionError):
            (Attr("a") * Attr("b")).to_affine()

    def test_unsupported_operator_rejected(self):
        with pytest.raises(QueryModelError):
            BinOp("/", Const(1.0), Const(2.0))

    def test_invalid_operand_rejected(self):
        with pytest.raises(QueryModelError):
            Attr("a") + "nope"  # type: ignore[operator]


class TestAffine:
    def test_add_and_scale(self):
        left = Attr("a").to_affine()
        right = Param("p", 2.0).to_affine()
        combined = left.add(right.scale(3.0))
        assert combined.evaluate({"a": 1.0}) == 1.0 + 6.0
        assert combined.attributes() == {"a"}

    def test_is_constant(self):
        assert Const(2.0).to_affine().is_constant()
        assert not Attr("a").to_affine().is_constant()
        assert not Param("p", 1.0).to_affine().is_constant()

    def test_substitute_params(self):
        affine = (Attr("a") + Param("p", 2.0)).to_affine()
        substituted = affine.substitute_params({"p": 10.0})
        assert substituted.evaluate({"a": 0.0}) == 10.0

    def test_affine_cache_consistency(self):
        expr = Attr("a") + Param("p", 2.0)
        assert expr.affine() is expr.affine()
        assert isinstance(expr.affine(), Affine)


class TestTreeHelpers:
    def test_rebuild_expression_preserves_structure(self):
        expr = BinOp("+", Attr("a"), Param("p", 2.0))
        rebuilt = rebuild_expression(expr, {"p": 9.0})
        assert rebuilt.render_sql() == "a + 9"
        assert expr.render_sql() == "a + 2"

    def test_collect_params_detects_conflicts(self):
        expr = BinOp("+", Param("p", 1.0), Param("p", 2.0))
        with pytest.raises(QueryModelError):
            collect_params(expr)

    def test_contains_attribute_and_demote(self):
        expr = BinOp("*", Attr("a"), Param("p", 0.5))
        assert contains_attribute(expr)
        demoted = demote_params(expr)
        assert collect_params(demoted) == {}
        assert demoted.evaluate({"a": 4.0}) == 2.0
